package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	in := testInstance()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != in.N || got.U != in.U || got.F != in.F {
		t.Fatalf("dimensions changed: %d/%d/%d", got.N, got.U, got.F)
	}
	if got.TotalDemand() != in.TotalDemand() || got.LinkCount() != in.LinkCount() {
		t.Error("payload changed through round trip")
	}
	if got.MaxCost() != in.MaxCost() {
		t.Error("costs changed through round trip")
	}
}

func TestWriteJSONValidates(t *testing.T) {
	in := testInstance()
	in.Demand[0][0] = -1
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err == nil {
		t.Error("invalid instance serialized without error")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"sbss": 1, "unknown_field": 2}`)); err == nil {
		t.Error("unknown field: want error")
	}
	// Structurally valid JSON but an invalid instance.
	if _, err := ReadJSON(strings.NewReader(`{"sbss": 1, "groups": 1, "contents": 1}`)); err == nil {
		t.Error("missing matrices: want error")
	}
}

func TestSolutionJSONRoundTrip(t *testing.T) {
	in := testInstance()
	x := NewCachingPolicy(in)
	x.Set(0, 0, true)
	y := NewRoutingPolicy(in)
	y.Set(0, 0, 0, 0.5)
	sol := &Solution{Caching: x, Routing: y, Cost: TotalServingCost(in, y)}

	var buf bytes.Buffer
	if err := sol.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSolutionJSON(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Caching.Get(0, 0) || got.Routing.At(0, 0, 0) != 0.5 {
		t.Error("policies changed through round trip")
	}
	if got.Cost.Total != sol.Cost.Total {
		t.Errorf("re-derived cost %v != original %v", got.Cost.Total, sol.Cost.Total)
	}
}

func TestSolutionJSONRejectsInfeasible(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	y.Set(0, 0, 0, 0.5) // routed without being cached
	sol := &Solution{Caching: NewCachingPolicy(in), Routing: y}
	var buf bytes.Buffer
	if err := sol.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSolutionJSON(&buf, in); err == nil {
		t.Error("infeasible stored solution: want error")
	}
}

func TestSolutionJSONShapeMismatch(t *testing.T) {
	in := testInstance()
	sol := &Solution{Caching: NewCachingPolicy(in), Routing: NewRoutingPolicy(in)}
	var buf bytes.Buffer
	if err := sol.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	other := testInstance()
	other.F = 5
	other.Demand = [][]float64{{1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}}
	if _, err := ReadSolutionJSON(&buf, other); err == nil {
		t.Error("shape mismatch: want error")
	}
}

func TestSolutionWriteJSONRequiresPolicies(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Solution{}).WriteJSON(&buf); err == nil {
		t.Error("empty solution: want error")
	}
}
