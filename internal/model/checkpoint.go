package model

import (
	"fmt"
	"hash/crc32"
	"math"
)

// This file is the durable-state layer of the repository: a versioned,
// CRC-guarded binary snapshot of everything the DUA sweep (Algorithm 1)
// needs to continue after a coordinator crash — iteration τ, the phase
// cursor, both policies, the incremental aggregate, the cost history, the
// dual multipliers, the LPPM noise-stream position and the per-SBS health
// records of a distributed run.
//
// Design notes:
//
//   - The aggregate is SERIALIZED, not rebuilt on resume. The tracker
//     advances incrementally (YMinusInto/Install), and floating-point
//     summation order differs between the incremental path and a full
//     AggregateInto rebuild; reconstructing it would break the bit-identical
//     resume guarantee in the last bit.
//   - Floats round-trip through math.Float64bits, so +Inf (the initial
//     prevCost) and every denormal survive exactly.
//   - The decoder never trusts a length: every count is bounds-checked
//     against the remaining bytes BEFORE any allocation, and a corrupted or
//     truncated input yields a structured error, never a panic. The CRC32
//     trailer is verified first, so random corruption is rejected cheaply.

const (
	// checkpointMagic identifies a checkpoint file.
	checkpointMagic = "EDGECKPT"
	// checkpointVersion is the current format version. Version 2 added the
	// engine-kind byte after the phase cursor; version-1 snapshots (which
	// predate pluggable engines and were always Gauss-Seidel) still decode,
	// with Engine defaulting to EngineGaussSeidel.
	checkpointVersion = 2
	// maxCheckpointDim bounds each of N, U, F in a decoded checkpoint; a
	// hostile header must not drive a huge allocation.
	maxCheckpointDim = 1 << 20
	// maxCheckpointSize bounds the whole encoded snapshot (1 GiB).
	maxCheckpointSize = 1 << 30
)

// SBSHealthState is the serializable form of the BS agent's per-SBS
// liveness record plus its fault accounting, so a resumed distributed run
// keeps quarantine decisions and statistics instead of re-learning them.
type SBSHealthState struct {
	// ConsecMisses, Quarantined, ProbeSweep and HoldConv mirror the BS
	// agent's live health record (see internal/sim).
	ConsecMisses int
	Quarantined  bool
	ProbeSweep   int
	HoldConv     bool
	// The remaining fields mirror core.SBSFaultStats.
	Misses          int
	Retries         int
	Malformed       int
	QuarantineSpans int
	SkippedPhases   int
	FailedProbes    int
}

// Checkpoint is one recoverable snapshot of a DUA run. Sweep and Phase are
// the RESUME point: the next phase to execute is order position Phase of
// sweep Sweep (Phase 0 means a sweep boundary).
type Checkpoint struct {
	// Sweep and Phase locate the resume point in protocol time.
	Sweep int
	Phase int
	// Engine records the sweep discipline that produced the trajectory.
	// Resume requires an engine of the same family: a Gauss-Seidel snapshot
	// cannot continue under a Jacobi engine (the trajectories diverge), but
	// the reference and parallel Jacobi engines are interchangeable.
	Engine EngineKind
	// Order is the SBS update order of the run (identity for the paper's
	// fixed order; checkpointing rejects shuffled-restart runs).
	Order []int
	// Caching and Routing are the BS's view of the policies (post-LPPM
	// when privacy is on).
	Caching *CachingPolicy
	Routing *RoutingPolicy
	// Aggregate is the tracker's running masked aggregate, stored verbatim
	// for bit-identical resume (see the file comment).
	Aggregate Mat
	// History is the per-sweep cost trail so far; PrevCost is the γ-check
	// reference (+Inf before the first completed sweep).
	History  []float64
	PrevCost float64
	// Best is the cheapest solution seen so far (nil before the first
	// completed sweep).
	Best *Solution
	// Mu holds each SBS's dual multipliers as left by its last Solve. The
	// dual loop cold-starts every phase, so restoring μ is diagnostic
	// completeness (and a warm-start hook), not a correctness requirement.
	Mu [][]float64
	// HasNoise records whether LPPM was active; NoiseSeed and NoiseDraws
	// are then the noise stream's identity and position (see
	// core.NoiseSource), making the privacy noise seekable on resume.
	HasNoise   bool
	NoiseSeed  int64
	NoiseDraws uint64
	// Health holds the BS agent's per-SBS records of a distributed run:
	// empty for in-process runs, exactly N entries otherwise.
	Health []SBSHealthState
	// InstanceFP is the fingerprint of the instance the snapshot was taken
	// against (0 when unset); resume rejects a mismatched instance.
	InstanceFP uint64
}

// preflight validates internal consistency before encoding.
func (c *Checkpoint) preflight() error {
	if c.Caching == nil || c.Routing == nil {
		return fmt.Errorf("model: checkpoint: nil policy")
	}
	n, f := c.Caching.N, c.Caching.F
	u := c.Routing.T.U
	if c.Routing.T.N != n || c.Routing.T.F != f {
		return fmt.Errorf("model: checkpoint: routing is %dx%dx%d, caching is %dx%d",
			c.Routing.T.N, u, c.Routing.T.F, n, f)
	}
	if c.Aggregate.U != u || c.Aggregate.F != f {
		return fmt.Errorf("model: checkpoint: aggregate is %dx%d, want %dx%d", c.Aggregate.U, c.Aggregate.F, u, f)
	}
	if n <= 0 || u <= 0 || f <= 0 || n > maxCheckpointDim || u > maxCheckpointDim || f > maxCheckpointDim {
		return fmt.Errorf("model: checkpoint: dimensions %dx%dx%d out of range", n, u, f)
	}
	if c.Sweep < 0 || c.Phase < 0 || c.Phase >= n {
		return fmt.Errorf("model: checkpoint: resume point sweep %d phase %d out of range (N=%d)", c.Sweep, c.Phase, n)
	}
	if !c.Engine.Valid() {
		return fmt.Errorf("model: checkpoint: unknown engine kind %d", c.Engine)
	}
	if err := validateOrder(c.Order, n); err != nil {
		return err
	}
	if len(c.Mu) != 0 && len(c.Mu) != n {
		return fmt.Errorf("model: checkpoint: %d multiplier vectors for N=%d", len(c.Mu), n)
	}
	if len(c.Health) != 0 && len(c.Health) != n {
		return fmt.Errorf("model: checkpoint: %d health entries for N=%d", len(c.Health), n)
	}
	if b := c.Best; b != nil {
		if b.Caching == nil || b.Routing == nil {
			return fmt.Errorf("model: checkpoint: best solution has nil policy")
		}
		if b.Caching.N != n || b.Caching.F != f || b.Routing.T.N != n || b.Routing.T.U != u || b.Routing.T.F != f {
			return fmt.Errorf("model: checkpoint: best solution shape mismatch")
		}
	}
	return nil
}

// validateOrder checks that order is a permutation of 0..n-1.
func validateOrder(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("model: checkpoint: order has %d entries for N=%d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("model: checkpoint: order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[v] = true
	}
	return nil
}

// Validate checks the snapshot against the instance it will resume.
func (c *Checkpoint) Validate(in *Instance) error {
	if err := c.preflight(); err != nil {
		return err
	}
	if c.Caching.N != in.N || c.Caching.F != in.F || c.Routing.T.U != in.U {
		return fmt.Errorf("model: checkpoint: shapes %dx%dx%d do not match instance %dx%dx%d",
			c.Caching.N, c.Routing.T.U, c.Caching.F, in.N, in.U, in.F)
	}
	if c.InstanceFP != 0 {
		if fp := in.Fingerprint(); fp != c.InstanceFP {
			return fmt.Errorf("model: checkpoint: instance fingerprint %016x does not match %016x — snapshot was taken against different data", c.InstanceFP, fp)
		}
	}
	return nil
}

// MarshalBinary encodes the snapshot in the versioned binary format with a
// CRC32 trailer.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	if err := c.preflight(); err != nil {
		return nil, err
	}
	n, u, f := c.Caching.N, c.Routing.T.U, c.Caching.F
	w := &ckptWriter{}
	w.raw([]byte(checkpointMagic))
	w.u16(checkpointVersion)
	w.u32(uint32(n))
	w.u32(uint32(u))
	w.u32(uint32(f))
	w.u64(c.InstanceFP)
	w.u32(uint32(c.Sweep))
	w.u32(uint32(c.Phase))
	w.u8(uint8(c.Engine))
	w.f64(c.PrevCost)
	if c.HasNoise {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.i64(c.NoiseSeed)
	w.u64(c.NoiseDraws)
	for _, v := range c.Order {
		w.u32(uint32(v))
	}
	w.words(c.Caching.bits)
	w.f64s(c.Routing.T.Data)
	w.f64s(c.Aggregate.Data)
	w.u32(uint32(len(c.History)))
	w.f64s(c.History)
	if c.Best != nil {
		w.u8(1)
		w.words(c.Best.Caching.bits)
		w.f64s(c.Best.Routing.T.Data)
		w.f64(c.Best.Cost.Edge)
		w.f64(c.Best.Cost.Backhaul)
		w.f64(c.Best.Cost.Total)
	} else {
		w.u8(0)
	}
	if len(c.Mu) == 0 {
		w.u8(0)
	} else {
		w.u8(1)
		for _, mu := range c.Mu {
			w.u32(uint32(len(mu)))
			w.f64s(mu)
		}
	}
	w.u32(uint32(len(c.Health)))
	for _, h := range c.Health {
		w.u32(uint32(h.ConsecMisses))
		w.bool8(h.Quarantined)
		w.u32(uint32(h.ProbeSweep))
		w.bool8(h.HoldConv)
		w.u32(uint32(h.Misses))
		w.u32(uint32(h.Retries))
		w.u32(uint32(h.Malformed))
		w.u32(uint32(h.QuarantineSpans))
		w.u32(uint32(h.SkippedPhases))
		w.u32(uint32(h.FailedProbes))
	}
	w.u32(crc32.ChecksumIEEE(w.buf))
	if len(w.buf) > maxCheckpointSize {
		return nil, fmt.Errorf("model: checkpoint: encoded size %d exceeds limit %d", len(w.buf), maxCheckpointSize)
	}
	return w.buf, nil
}

// UnmarshalCheckpoint decodes a snapshot, verifying the CRC trailer first
// and bounds-checking every length against the remaining input before
// allocating. It returns a structured error for any truncated, corrupted
// or inconsistent input; it never panics.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	const headerLen = len(checkpointMagic) + 2
	if len(data) > maxCheckpointSize {
		return nil, fmt.Errorf("model: checkpoint: %d bytes exceeds limit %d", len(data), maxCheckpointSize)
	}
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("model: checkpoint: %d bytes is too short for header and trailer", len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("model: checkpoint: bad magic %q", data[:len(checkpointMagic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	wantCRC := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16 | uint32(trailer[3])<<24
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("model: checkpoint: CRC mismatch (stored %08x, computed %08x)", wantCRC, got)
	}

	r := &ckptReader{buf: body, off: len(checkpointMagic)}
	version := r.u16("version")
	if r.err == nil && (version < 1 || version > checkpointVersion) {
		return nil, fmt.Errorf("model: checkpoint: unsupported version %d (want 1..%d)", version, checkpointVersion)
	}
	n := int(r.u32("N"))
	u := int(r.u32("U"))
	f := int(r.u32("F"))
	if r.err == nil && (n <= 0 || u <= 0 || f <= 0 || n > maxCheckpointDim || u > maxCheckpointDim || f > maxCheckpointDim) {
		return nil, fmt.Errorf("model: checkpoint: dimensions %dx%dx%d out of range", n, u, f)
	}
	ck := &Checkpoint{InstanceFP: r.u64("fingerprint")}
	ck.Sweep = int(r.u32("sweep"))
	ck.Phase = int(r.u32("phase"))
	if version >= 2 {
		// Version 1 predates pluggable engines; its snapshots were always
		// produced by the Gauss-Seidel sweep, which the zero value encodes.
		ck.Engine = EngineKind(r.u8("engine"))
		if r.err == nil && !ck.Engine.Valid() {
			return nil, fmt.Errorf("model: checkpoint: unknown engine kind %d", ck.Engine)
		}
	}
	ck.PrevCost = r.f64("prevCost")
	ck.HasNoise = r.u8("hasNoise") != 0
	ck.NoiseSeed = r.i64("noiseSeed")
	ck.NoiseDraws = r.u64("noiseDraws")
	if r.err != nil {
		return nil, r.err
	}
	if ck.Sweep < 0 || ck.Phase < 0 || ck.Phase >= n {
		return nil, fmt.Errorf("model: checkpoint: resume point sweep %d phase %d out of range (N=%d)", ck.Sweep, ck.Phase, n)
	}

	ck.Order = make([]int, n)
	for i := range ck.Order {
		ck.Order[i] = int(r.u32("order"))
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := validateOrder(ck.Order, n); err != nil {
		return nil, err
	}

	ck.Caching = decodeCachingBits(r, n, f, "caching bits")
	routingData := r.f64s(int64(n)*int64(u)*int64(f), "routing tensor")
	aggData := r.f64s(int64(u)*int64(f), "aggregate")
	histLen := r.count("history length", 8)
	hist := r.f64s(int64(histLen), "history")
	if r.err != nil {
		return nil, r.err
	}
	ck.Routing = &RoutingPolicy{T: Tensor3{N: n, U: u, F: f, Data: routingData}}
	ck.Aggregate = Mat{U: u, F: f, Data: aggData}
	ck.History = hist

	if r.u8("best flag") != 0 && r.err == nil {
		bestCaching := decodeCachingBits(r, n, f, "best caching bits")
		bestRouting := r.f64s(int64(n)*int64(u)*int64(f), "best routing tensor")
		edge := r.f64("best edge cost")
		backhaul := r.f64("best backhaul cost")
		total := r.f64("best total cost")
		if r.err != nil {
			return nil, r.err
		}
		ck.Best = &Solution{
			Caching: bestCaching,
			Routing: &RoutingPolicy{T: Tensor3{N: n, U: u, F: f, Data: bestRouting}},
			Cost:    CostBreakdown{Edge: edge, Backhaul: backhaul, Total: total},
		}
	}
	if r.err != nil {
		return nil, r.err
	}

	if r.u8("mu flag") != 0 && r.err == nil {
		ck.Mu = make([][]float64, n)
		for i := range ck.Mu {
			muLen := r.count(fmt.Sprintf("mu[%d] length", i), 8)
			ck.Mu[i] = r.f64s(int64(muLen), "mu vector")
			if r.err != nil {
				return nil, r.err
			}
		}
	}

	healthLen := r.count("health length", healthEntrySize)
	if r.err != nil {
		return nil, r.err
	}
	if healthLen != 0 && healthLen != n {
		return nil, fmt.Errorf("model: checkpoint: %d health entries for N=%d", healthLen, n)
	}
	if healthLen > 0 {
		ck.Health = make([]SBSHealthState, healthLen)
		for i := range ck.Health {
			h := &ck.Health[i]
			h.ConsecMisses = int(r.u32("health"))
			h.Quarantined = r.u8("health") != 0
			h.ProbeSweep = int(r.u32("health"))
			h.HoldConv = r.u8("health") != 0
			h.Misses = int(r.u32("health"))
			h.Retries = int(r.u32("health"))
			h.Malformed = int(r.u32("health"))
			h.QuarantineSpans = int(r.u32("health"))
			h.SkippedPhases = int(r.u32("health"))
			h.FailedProbes = int(r.u32("health"))
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("model: checkpoint: %d trailing bytes after payload", len(r.buf)-r.off)
	}
	return ck, nil
}

// healthEntrySize is the encoded size of one SBSHealthState.
const healthEntrySize = 8*4 + 2

// decodeCachingBits reads an N×F packed bitset.
func decodeCachingBits(r *ckptReader, n, f int, what string) *CachingPolicy {
	p := NewCachingPolicyDims(n, f)
	words := r.words(int64(len(p.bits)), what)
	if r.err != nil {
		return nil
	}
	copy(p.bits, words)
	return p
}

// ckptWriter accumulates the little-endian encoding.
type ckptWriter struct{ buf []byte }

func (w *ckptWriter) raw(b []byte) { w.buf = append(w.buf, b...) }
func (w *ckptWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *ckptWriter) bool8(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *ckptWriter) u16(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }
func (w *ckptWriter) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (w *ckptWriter) u64(v uint64) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (w *ckptWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *ckptWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *ckptWriter) f64s(vs []float64) {
	for _, v := range vs {
		w.f64(v)
	}
}
func (w *ckptWriter) words(vs []uint64) {
	for _, v := range vs {
		w.u64(v)
	}
}

// ckptReader is a sticky-error bounds-checked decoder over the body bytes
// (CRC trailer already stripped and verified).
type ckptReader struct {
	buf []byte
	off int
	err error
}

func (r *ckptReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("model: checkpoint: "+format, args...)
	}
}

// take returns the next n bytes, failing (without allocating) when fewer
// remain.
func (r *ckptReader) take(n int64, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > int64(len(r.buf)-r.off) {
		r.fail("truncated reading %s: need %d bytes, have %d", what, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *ckptReader) u8(what string) uint8 {
	b := r.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckptReader) u16(what string) uint16 {
	b := r.take(2, what)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *ckptReader) u32(what string) uint32 {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *ckptReader) u64(what string) uint64 {
	b := r.take(8, what)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *ckptReader) i64(what string) int64   { return int64(r.u64(what)) }
func (r *ckptReader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

// count reads a u32 length prefix and rejects it when the promised payload
// (elemSize bytes per element) cannot fit in the remaining input — the
// oversized-length guard that runs before any allocation.
func (r *ckptReader) count(what string, elemSize int) int {
	v := int64(r.u32(what))
	if r.err != nil {
		return 0
	}
	if v*int64(elemSize) > int64(len(r.buf)-r.off) {
		r.fail("%s %d overruns the remaining %d bytes", what, v, len(r.buf)-r.off)
		return 0
	}
	return int(v)
}

// f64s reads n float64 values; the byte requirement is checked by take
// before the output slice is allocated.
func (r *ckptReader) f64s(n int64, what string) []float64 {
	b := r.take(n*8, what)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(uint64(b[i*8]) | uint64(b[i*8+1])<<8 | uint64(b[i*8+2])<<16 |
			uint64(b[i*8+3])<<24 | uint64(b[i*8+4])<<32 | uint64(b[i*8+5])<<40 |
			uint64(b[i*8+6])<<48 | uint64(b[i*8+7])<<56)
	}
	return out
}

// words reads n uint64 words with the same pre-allocation bounds check.
func (r *ckptReader) words(n int64, what string) []uint64 {
	b := r.take(n*8, what)
	if b == nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(b[i*8]) | uint64(b[i*8+1])<<8 | uint64(b[i*8+2])<<16 |
			uint64(b[i*8+3])<<24 | uint64(b[i*8+4])<<32 | uint64(b[i*8+5])<<40 |
			uint64(b[i*8+6])<<48 | uint64(b[i*8+7])<<56
	}
	return out
}
