// Package linttest checks analyzers against fixture packages annotated
// with golden-diagnostic comments, in the spirit of analysistest:
//
//	x := make([]int, n) // want `make allocates`
//
// A `// want` comment carries one backquoted regular expression per
// diagnostic expected on that line. Every reported diagnostic must match
// an expectation on its exact file:line, and every expectation must be
// matched — extra and missing findings both fail the test.
package linttest

import (
	"bytes"
	"fmt"
	"regexp"
	"testing"

	"edgecache/internal/lint"
)

var (
	wantLineRe = regexp.MustCompile(`// want (.+)$`)
	wantArgRe  = regexp.MustCompile("`([^`]+)`")
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Check loads pattern (relative to dir), runs the named analyzers
// (comma-separated, "" for all) over every loaded module package, and
// compares the surviving diagnostics against the fixtures' want comments.
func Check(t *testing.T, dir, analyzers, pattern string) {
	t.Helper()
	suite, err := lint.ByName(analyzers)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.Load(dir, pattern)
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(suite, nil)

	wants := map[string][]*expectation{}
	for _, pkg := range prog.Packages {
		for i, src := range pkg.Sources {
			filename := pkg.Filenames[i]
			for lineNo, line := range bytes.Split(src, []byte("\n")) {
				m := wantLineRe.FindSubmatch(line)
				if m == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d", filename, lineNo+1)
				for _, arg := range wantArgRe.FindAllSubmatch(m[1], -1) {
					re, err := regexp.Compile(string(arg[1]))
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, arg[1], err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}
