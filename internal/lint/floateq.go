package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags exact ==/!= between computed float64 (or float32) values:
// after independent rounding, mathematically equal expressions rarely
// share a bit pattern, so exact comparison is almost always a lurking
// convergence or feasibility bug. Comparisons against constants (0, 1,
// sentinels) and math.Inf are exact by construction and allowed; the rare
// intentional exact comparison — sort tie-breaking, change detection —
// carries an //edgecache:lint-ignore floateq directive with its reason.
//
// The analyzer attaches a machine-applicable fix (edgelint -fix) that
// rewrites `a == b` to `floats.Eq(a, b)` and `a != b` to `!floats.Eq(a,
// b)`, adding the edgecache/internal/floats import when missing.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no exact ==/!= between computed float values; use internal/floats helpers",
	Run:  runFloatEq,
}

const floatsPkgPath = "edgecache/internal/floats"

func runFloatEq(pass *Pass) {
	pkg := pass.Pkg
	for i, file := range pkg.Files {
		filename := pkg.Filenames[i]
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pkg, be.X) || !isFloat(pkg, be.Y) {
				return true
			}
			if isExactOperand(pkg, be.X) || isExactOperand(pkg, be.Y) {
				return true
			}
			fixes := floatEqFixes(pass, file, filename, be)
			op := "=="
			helper := "floats.Eq"
			if be.Op == token.NEQ {
				op = "!="
				helper = "!floats.Eq"
			}
			pass.Report(be.Pos(), fmt.Sprintf(
				"exact float %s comparison; use %s(a, b) from %s (or an //edgecache:lint-ignore floateq <reason> if exactness is intended)",
				op, helper, floatsPkgPath), fixes)
			return true
		})
	}
}

func isFloat(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isExactOperand reports whether the operand's value is exact by
// construction: an untyped or typed constant (literals, named constants)
// or a math.Inf call.
func isExactOperand(pkg *Package, e ast.Expr) bool {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil {
		return fn.Pkg().Path() == "math" && fn.Name() == "Inf"
	}
	return false
}

// floatEqFixes builds the rewrite to floats.Eq, including the import edit
// when the file does not import the helpers yet.
func floatEqFixes(pass *Pass, file *ast.File, filename string, be *ast.BinaryExpr) []TextEdit {
	pkg, prog := pass.Pkg, pass.Prog
	left := pkg.sourceAt(prog.Fset, be.X.Pos(), be.X.End())
	right := pkg.sourceAt(prog.Fset, be.Y.Pos(), be.Y.End())
	if left == "" || right == "" {
		return nil
	}
	var repl string
	if be.Op == token.EQL {
		repl = fmt.Sprintf("floats.Eq(%s, %s)", left, right)
	} else {
		repl = fmt.Sprintf("!floats.Eq(%s, %s)", left, right)
	}
	fixes := []TextEdit{{Pos: be.Pos(), End: be.End(), NewText: repl}}
	if edit, ok := addImportEdit(file, floatsPkgPath); ok {
		fixes = append(fixes, edit)
	}
	return fixes
}

// addImportEdit returns an edit inserting the import, or ok=false when the
// file already imports it. Insertion requires an existing grouped import
// block; single-import files fall back to fix-less diagnostics.
func addImportEdit(file *ast.File, path string) (TextEdit, bool) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			if strings.Trim(is.Path.Value, `"`) == path {
				return TextEdit{}, false
			}
		}
		if gd.Lparen.IsValid() && len(gd.Specs) > 0 {
			last := gd.Specs[len(gd.Specs)-1].(*ast.ImportSpec)
			return TextEdit{
				Pos:     last.End(),
				End:     last.End(),
				NewText: "\n\n\t\"" + path + "\"",
			}, true
		}
	}
	return TextEdit{}, false
}
