// Package dp implements the differential-privacy machinery behind the
// paper's LPPM (Laplace Privacy-Preserving Mechanism): the standard and
// bounded Laplace mechanisms, the Gaussian and exponential mechanisms for
// comparison experiments, and a composition accountant that tracks the
// privacy budget spent across the iterations of the distributed algorithm.
//
// The paper's Definition 2 perturbs each routing value y by subtracting a
// noise term r drawn from a Laplace density truncated and renormalized on
// the interval [0, δ·y] (its eq. 28, following Holohan et al., "The Bounded
// Laplace Mechanism in Differential Privacy"). Theorem 4 states the
// mechanism is ε-differentially private when the scale satisfies
// β ≥ Δf/ε; BetaForEpsilon implements exactly that calibration.
package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// SampleLaplace draws one sample from the zero-mean Laplace distribution
// with the given scale b (density e^(−|x|/b)/(2b)) using inverse-CDF
// sampling. It panics if scale is not positive, mirroring math/rand's
// treatment of invalid distribution parameters.
func SampleLaplace(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 {
		panic(fmt.Sprintf("dp: Laplace scale must be positive, got %v", scale))
	}
	// u uniform on (-0.5, 0.5]; inverse CDF of the Laplace distribution.
	u := rng.Float64() - 0.5
	if u == -0.5 { // avoid log(0) at the open end
		u = -0.5 + 1e-16
	}
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

// BetaForEpsilon returns the Laplace scale β = Δf/ε that Theorem 4 of the
// paper requires for ε-differential privacy with query sensitivity Δf
// (eq. 30). It errors on non-positive inputs because a zero ε or
// sensitivity would demand infinite or zero noise.
func BetaForEpsilon(sensitivity, epsilon float64) (float64, error) {
	if sensitivity <= 0 {
		return 0, fmt.Errorf("dp: sensitivity must be positive, got %v", sensitivity)
	}
	if epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %v", epsilon)
	}
	return sensitivity / epsilon, nil
}

// BoundedLaplace is the truncated-and-renormalized Laplace distribution of
// the paper's eq. 28: density proportional to e^(−|r|/β) restricted to
// [Lo, Hi]. The zero value is not usable; construct with NewBoundedLaplace.
type BoundedLaplace struct {
	beta   float64
	lo, hi float64
	// massNeg and massPos are the unnormalized masses of [lo,0) and
	// [max(lo,0), hi]; their sum is the normalization constant α(β)·2β.
	massNeg, massPos float64
}

// NewBoundedLaplace builds the distribution. Requirements: β > 0 and
// lo ≤ hi. The interval may straddle zero; LPPM uses [0, δ·y].
func NewBoundedLaplace(beta, lo, hi float64) (*BoundedLaplace, error) {
	if beta <= 0 || math.IsNaN(beta) || math.IsInf(beta, 0) {
		return nil, fmt.Errorf("dp: beta must be positive and finite, got %v", beta)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return nil, fmt.Errorf("dp: invalid interval [%v, %v]", lo, hi)
	}
	b := &BoundedLaplace{beta: beta, lo: lo, hi: hi}
	// Unnormalized mass of e^(−|r|/β) over [a,b] with a,b on one side of 0
	// is β·|e^(−|a|/β) − e^(−|b|/β)|.
	if lo < 0 {
		upper := math.Min(hi, 0)
		b.massNeg = beta * (math.Exp(-(-upper)/beta) - math.Exp(-(-lo)/beta))
	}
	if hi > 0 {
		lower := math.Max(lo, 0)
		b.massPos = beta * (math.Exp(-lower/beta) - math.Exp(-hi/beta))
	}
	if b.massNeg+b.massPos <= 0 {
		// Degenerate interval (lo == hi): treat as a point mass.
		b.massNeg, b.massPos = 0, 0
	}
	return b, nil
}

// Interval returns the support [lo, hi].
func (b *BoundedLaplace) Interval() (lo, hi float64) { return b.lo, b.hi }

// Beta returns the scale parameter β.
func (b *BoundedLaplace) Beta() float64 { return b.beta }

// NormalizingConstant returns α(β) = ∫ e^(−|r|/β)/(2β) dr over the support,
// i.e. the probability mass the untruncated Laplace places on [lo, hi].
// The paper's eq. 28 divides by this to renormalize.
func (b *BoundedLaplace) NormalizingConstant() float64 {
	return (b.massNeg + b.massPos) / (2 * b.beta)
}

// Density evaluates the renormalized density at r (eq. 28): zero outside
// the support.
func (b *BoundedLaplace) Density(r float64) float64 {
	if r < b.lo || r > b.hi {
		return 0
	}
	total := b.massNeg + b.massPos
	if total == 0 {
		return math.Inf(1) // point mass at lo == hi
	}
	return math.Exp(-math.Abs(r)/b.beta) / total
}

// Sample draws one value by inverse-CDF sampling. Degenerate intervals
// return the point lo.
func (b *BoundedLaplace) Sample(rng *rand.Rand) float64 {
	total := b.massNeg + b.massPos
	if total == 0 {
		return b.lo
	}
	u := rng.Float64() * total
	if u < b.massNeg {
		// Negative side: r ∈ [lo, min(hi,0)), density e^(r/β).
		// Mass from lo to r is β(e^(r/β) − e^(lo/β)).
		r := b.beta * math.Log(math.Exp(b.lo/b.beta)+u/b.beta)
		return clamp(r, b.lo, b.hi)
	}
	u -= b.massNeg
	// Positive side: r ∈ [max(lo,0), hi], density e^(−r/β).
	// Mass from lower to r is β(e^(−lower/β) − e^(−r/β)).
	lower := math.Max(b.lo, 0)
	r := -b.beta * math.Log(math.Exp(-lower/b.beta)-u/b.beta)
	return clamp(r, b.lo, b.hi)
}

// Mean returns the exact expectation of the distribution.
func (b *BoundedLaplace) Mean() float64 {
	total := b.massNeg + b.massPos
	if total == 0 {
		return b.lo
	}
	var moment float64
	// ∫ r·e^(−r/β) dr over [a,c] with 0 ≤ a ≤ c equals
	// β[(a+β)e^(−a/β) − (c+β)e^(−c/β)].
	if b.hi > 0 {
		a := math.Max(b.lo, 0)
		moment += b.beta * ((a+b.beta)*math.Exp(-a/b.beta) - (b.hi+b.beta)*math.Exp(-b.hi/b.beta))
	}
	if b.lo < 0 {
		// Mirror: ∫ r·e^(r/β) dr over [lo, c], c = min(hi,0), is the
		// negative of the positive-side formula applied to [−c, −lo].
		a, c := -math.Min(b.hi, 0), -b.lo
		moment -= b.beta * ((a+b.beta)*math.Exp(-a/b.beta) - (c+b.beta)*math.Exp(-c/b.beta))
	}
	return moment / total
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LPPMNoise draws the paper's Definition 2 disturbance for one routing
// value y: a bounded-Laplace sample on [0, δ·y] with scale β. δ must lie in
// [0,1) (the paper's Laplace component factor) and y in [0,1]. A zero y or
// δ yields zero noise.
func LPPMNoise(rng *rand.Rand, y, delta, beta float64) (float64, error) {
	if delta < 0 || delta >= 1 {
		return 0, fmt.Errorf("dp: delta must be in [0,1), got %v", delta)
	}
	if y < 0 || y > 1+1e-9 {
		return 0, fmt.Errorf("dp: routing value must be in [0,1], got %v", y)
	}
	if beta <= 0 {
		return 0, fmt.Errorf("dp: beta must be positive, got %v", beta)
	}
	hi := delta * y
	if hi <= 0 {
		return 0, nil
	}
	bl, err := NewBoundedLaplace(beta, 0, hi)
	if err != nil {
		return 0, err
	}
	return bl.Sample(rng), nil
}
