package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsFullSuite(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"noalloc", "determinism", "floateq", "flataccess", "lockedsend"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nope", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, errOut.String())
	}
}

// TestRepoGatePasses runs the driver exactly as verify.sh does and
// requires a clean module.
func TestRepoGatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is not short")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("edgelint found violations (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}
