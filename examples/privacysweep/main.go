// Privacy sweep: quantify the privacy/utility trade-off of LPPM on one
// scenario — the experiment a deployment engineer runs before picking a
// privacy budget. For each ε the example runs Algorithm 1 with LPPM,
// reports the serving-cost overhead versus the non-private run, and prints
// the privacy ledger (per-SBS parallel composition across sweeps).
//
//	go run ./examples/privacysweep
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"edgecache/internal/core"
	"edgecache/internal/dp"
	"edgecache/internal/experiments"
	"edgecache/internal/metrics"
	"edgecache/internal/stats"
)

func main() {
	sc := experiments.DefaultScenario()
	inst, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}

	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	clean, err := coord.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-private Algorithm 1: cost %.0f in %d sweeps\n\n",
		clean.Solution.Cost.Total, clean.Sweeps)

	table := metrics.NewTable("LPPM privacy/utility trade-off (δ = 0.5)",
		"epsilon", "cost", "overhead (%)", "sweeps", "total ε spent per SBS")
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100} {
		var acct dp.Accountant
		cfg := core.DefaultConfig()
		cfg.MaxSweeps = 12
		cfg.Privacy = &core.PrivacyConfig{
			Epsilon:    eps,
			Delta:      0.5,
			Rng:        rand.New(rand.NewSource(42)),
			Accountant: &acct,
		}
		c, err := core.NewCoordinator(inst, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		overhead := stats.RelativeChange(res.Solution.Cost.Total, clean.Solution.Cost.Total) * 100
		table.MustAddRow(eps, res.Solution.Cost.Total, overhead, res.Sweeps, acct.ParallelEpsilon())
	}
	table.AddNote("per-release ε composes sequentially over sweeps within one SBS" +
		" and in parallel across SBSs (each perturbs only its own routing)")
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
