package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec builds a Schedule from a compact comma-separated spec string,
// the format accepted by edgesim's -chaos flag:
//
//	seed=N          RNG seed for all link fault draws (default 1)
//	drop=P          baseline per-message drop probability on every link
//	dup=P           baseline duplication probability
//	reorder=P       baseline adjacent-swap reorder probability
//	delay=DUR       baseline max random extra delivery delay (e.g. 5ms)
//	crash=S@W[+K]   crash SBS S at the start of sweep W; with +K, restart
//	                it K sweeps later
//	partition=S@W[+D]  cut SBS S's link at sweep W; with +D, heal it D
//	                   phases later (otherwise the cut is permanent)
//	bscrash=W[+K]   crash the BS coordinator at sweep W; with +K, schedule
//	                the recovery restart (the restart is consumed when the
//	                crash happens — protocol time is frozen while the BS is
//	                down, so K is nominal)
//	bsrestart=W     schedule a BS restart on its own (nominal sweep W)
//
// Example: "seed=7,drop=0.3,crash=1@2+3" drops 30% of all traffic and
// crashes SBS 1 for sweeps 2..4. "bscrash=2+1,drop=0.3" kills the BS at
// sweep 2 and resumes it from its newest checkpoint.
//
// Events for one target (one SBS, or the BS) must be written in strictly
// increasing protocol-time order, counting the events a directive
// auto-generates (crash=1@2+3 occupies sweeps 2 and 5 for SBS 1). A
// duplicate trigger point or a later directive that jumps back in time
// for the same target is rejected with a *SpecConflictError naming both
// events — the runner fires same-point events in written order, so such a
// spec silently shadows (crashing an already-crashed SBS is a no-op)
// instead of doing what was written.
func ParseSpec(spec string) (Schedule, error) {
	s := Schedule{Seed: 1}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return Schedule{}, fmt.Errorf("chaos: %q: want key=value", item)
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			s.Links.DropProb, err = parseProb(val)
		case "dup":
			s.Links.DupProb, err = parseProb(val)
		case "reorder":
			s.Links.ReorderProb, err = parseProb(val)
		case "delay":
			s.Links.MaxDelay, err = time.ParseDuration(val)
		case "crash":
			var sbs, sweep, dur int
			sbs, sweep, dur, err = parseTarget(val)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, SBS: sbs, Op: OpCrash})
			if dur > 0 {
				s.Events = append(s.Events, Event{Sweep: sweep + dur, SBS: sbs, Op: OpRestart})
			}
		case "partition":
			var sbs, sweep, dur int
			sbs, sweep, dur, err = parseTarget(val)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, SBS: sbs, Op: OpPartition, Phases: dur})
		case "bscrash":
			var sweep, dur int
			sweep, dur, err = parseSweep(val)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, SBS: -1, Op: OpBSCrash})
			if dur > 0 {
				s.Events = append(s.Events, Event{Sweep: sweep + dur, SBS: -1, Op: OpBSRestart})
			}
		case "bsrestart":
			var sweep int
			sweep, _, err = parseSweep(val)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, SBS: -1, Op: OpBSRestart})
		default:
			return Schedule{}, fmt.Errorf("chaos: unknown directive %q", key)
		}
		if err != nil {
			return Schedule{}, fmt.Errorf("chaos: %q: %w", item, err)
		}
	}
	if err := checkSpecConflicts(s.Events); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// SpecConflictError reports two spec events for the same target whose
// written order is not strictly increasing in protocol time. Prev is the
// earlier directive's event, Next the offending one (chaos.Event for
// ParseSpec, chaos.ProcEvent for ParseProcSpec); Duplicate distinguishes
// an identical trigger point from a jump backwards.
type SpecConflictError struct {
	Prev, Next fmt.Stringer
	Duplicate  bool
}

// Error renders both conflicting events.
func (e *SpecConflictError) Error() string {
	if e.Duplicate {
		return fmt.Sprintf("chaos: duplicate trigger for one target: %q repeats the trigger point of earlier %q", e.Next, e.Prev)
	}
	return fmt.Sprintf("chaos: time-unordered events for one target: %q fires before earlier %q", e.Next, e.Prev)
}

// checkSpecConflicts enforces the per-target ordering ParseSpec documents.
// Programmatic schedules are exempt (Schedule.Validate does not call this):
// there the caller controls firing order explicitly and overlapping plans
// can be intentional.
func checkSpecConflicts(events []Event) error {
	last := map[int]Event{}
	for _, ev := range events {
		if prev, ok := last[ev.SBS]; ok {
			if ev.Sweep == prev.Sweep && ev.Phase == prev.Phase {
				return &SpecConflictError{Prev: prev, Next: ev, Duplicate: true}
			}
			if ev.Sweep < prev.Sweep || (ev.Sweep == prev.Sweep && ev.Phase < prev.Phase) {
				return &SpecConflictError{Prev: prev, Next: ev}
			}
		}
		last[ev.SBS] = ev
	}
	return nil
}

// parseProb parses a probability in [0, 1].
func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// parseSweep parses "SWEEP" or "SWEEP+DUR".
func parseSweep(val string) (sweep, dur int, err error) {
	when, tail, hasDur := strings.Cut(val, "+")
	if sweep, err = strconv.Atoi(when); err != nil {
		return 0, 0, err
	}
	if hasDur {
		if dur, err = strconv.Atoi(tail); err != nil {
			return 0, 0, err
		}
		if dur <= 0 {
			return 0, 0, fmt.Errorf("duration must be positive, got %d", dur)
		}
	}
	return sweep, dur, nil
}

// parseTarget parses "SBS@SWEEP" or "SBS@SWEEP+DUR".
func parseTarget(val string) (sbs, sweep, dur int, err error) {
	target, at, ok := strings.Cut(val, "@")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want SBS@SWEEP[+DUR], got %q", val)
	}
	if sbs, err = strconv.Atoi(target); err != nil {
		return 0, 0, 0, err
	}
	when, tail, hasDur := strings.Cut(at, "+")
	if sweep, err = strconv.Atoi(when); err != nil {
		return 0, 0, 0, err
	}
	if hasDur {
		if dur, err = strconv.Atoi(tail); err != nil {
			return 0, 0, 0, err
		}
		if dur <= 0 {
			return 0, 0, 0, fmt.Errorf("duration must be positive, got %d", dur)
		}
	}
	return sbs, sweep, dur, nil
}
