package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"edgecache/internal/model"
)

// bitEqualHistories compares two cost histories for exact (bit-level)
// equality — the resume guarantee is bit-identity, not tolerance.
func bitEqualHistories(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: history length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: history[%d] = %v, want %v (bit difference)", label, i, got[i], want[i])
		}
	}
}

// bitEqualResults asserts full trajectory equality: history, final cost
// and both final policies, all bit-for-bit.
func bitEqualResults(t *testing.T, got, want *RunResult, label string) {
	t.Helper()
	bitEqualHistories(t, got.History, want.History, label)
	if got.Converged != want.Converged || got.Sweeps != want.Sweeps {
		t.Fatalf("%s: converged/sweeps = %v/%d, want %v/%d", label, got.Converged, got.Sweeps, want.Converged, want.Sweeps)
	}
	if math.Float64bits(got.Solution.Cost.Total) != math.Float64bits(want.Solution.Cost.Total) {
		t.Fatalf("%s: final cost %v, want %v", label, got.Solution.Cost.Total, want.Solution.Cost.Total)
	}
	if got.Solution.Caching.DiffCount(want.Solution.Caching) != 0 {
		t.Fatalf("%s: final caching policy differs", label)
	}
	gd, wd := got.Solution.Routing.T.Data, want.Solution.Routing.T.Data
	for i := range gd {
		if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
			t.Fatalf("%s: final routing[%d] = %v, want %v", label, i, gd[i], wd[i])
		}
	}
}

func TestCheckpointConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := randomInstance(rng, 3, 5, 6)

	cfg := DefaultConfig()
	cfg.Checkpoint = &CheckpointConfig{}
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("nil sink: want error")
	}

	cfg.Checkpoint = &CheckpointConfig{Sink: model.NewMemCheckpointStore(0)}
	cfg.Restarts = 2
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("checkpoint with restarts: want error")
	}
	cfg.Restarts = 0

	// A private checkpointed run needs a seekable noise source; a bare Rng
	// (even alongside a Noise source, since Rng wins) has no position.
	cfg.Privacy = &PrivacyConfig{Epsilon: 1, Delta: 0.5, Rng: rng}
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("checkpoint with bare Rng privacy: want error")
	}
	cfg.Privacy = &PrivacyConfig{Epsilon: 1, Delta: 0.5, Rng: rng, Noise: NewNoiseSource(7)}
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("checkpoint with Rng and Noise both set: want error")
	}
	cfg.Privacy = &PrivacyConfig{Epsilon: 1, Delta: 0.5, Noise: NewNoiseSource(7)}
	if _, err := NewCoordinator(inst, cfg); err != nil {
		t.Errorf("checkpoint with Noise alone rejected: %v", err)
	}
}

func TestCheckpointCaptureIsNonIntrusive(t *testing.T) {
	// Turning checkpointing on must not perturb the trajectory by a single
	// bit: snapshots are pure reads of the sweep state.
	rng := rand.New(rand.NewSource(11))
	inst := randomInstance(rng, 4, 6, 8)

	plain, err := NewCoordinator(inst, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	store := model.NewMemCheckpointStore(0)
	cfg := DefaultConfig()
	cfg.Checkpoint = &CheckpointConfig{Sink: store, EachPhase: true}
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	bitEqualResults(t, got, want, "checkpointed run")
	if store.Len() == 0 {
		t.Fatal("no snapshots captured")
	}
}

func TestResumeEveryBoundaryBitIdentical(t *testing.T) {
	// The headline guarantee: crash at ANY capture point (every sweep
	// boundary and every mid-sweep phase), resume in a fresh process, and
	// the trajectory — history, final cost, final policies — is
	// bit-identical to the uninterrupted run.
	rng := rand.New(rand.NewSource(21))
	inst := randomInstance(rng, 4, 6, 8)

	store := model.NewMemCheckpointStore(0)
	cfg := DefaultConfig()
	cfg.Checkpoint = &CheckpointConfig{Sink: store, EachPhase: true}
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	snaps := store.All()
	if len(snaps) < 4 {
		t.Fatalf("only %d snapshots captured", len(snaps))
	}
	for _, ck := range snaps {
		// A fresh coordinator models the post-crash process; it does not
		// checkpoint again (recovery needs no recursive snapshots).
		fresh, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		got, err := fresh.Resume(ck)
		if err != nil {
			t.Fatalf("resume at sweep %d phase %d: %v", ck.Sweep, ck.Phase, err)
		}
		bitEqualResults(t, got, want, "resume at sweep "+string(rune('0'+ck.Sweep))+" phase "+string(rune('0'+ck.Phase)))
	}
}

func TestResumePrivateRunBitIdentical(t *testing.T) {
	// With LPPM the trajectory depends on the noise stream; the checkpoint
	// records (seed, draws) and Resume seeks a same-seed source to that
	// position, so even the noisy trajectory replays bit-identically.
	rng := rand.New(rand.NewSource(31))
	inst := randomInstance(rng, 3, 5, 7)
	const seed = 99

	privateCfg := func(noise *NoiseSource) Config {
		cfg := DefaultConfig()
		cfg.MaxSweeps = 8
		cfg.Privacy = &PrivacyConfig{Epsilon: 1.0, Delta: 0.4, Noise: noise}
		return cfg
	}

	store := model.NewMemCheckpointStore(0)
	cfg := privateCfg(NewNoiseSource(seed))
	cfg.Checkpoint = &CheckpointConfig{Sink: store, EachPhase: true}
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ck := range store.All() {
		if !ck.HasNoise || ck.NoiseSeed != seed {
			t.Fatalf("snapshot at %d/%d lost the noise position: %+v", ck.Sweep, ck.Phase, ck)
		}
		// Fresh same-seed source at position zero: Resume must seek it.
		fresh, err := NewCoordinator(inst, privateCfg(NewNoiseSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := fresh.Resume(ck)
		if err != nil {
			t.Fatalf("resume at sweep %d phase %d: %v", ck.Sweep, ck.Phase, err)
		}
		bitEqualResults(t, got, want, "private resume")
	}
}

func TestResumeRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inst := randomInstance(rng, 3, 5, 6)

	store := model.NewMemCheckpointStore(0)
	cfg := DefaultConfig()
	cfg.Checkpoint = &CheckpointConfig{Sink: store}
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(); err != nil {
		t.Fatal(err)
	}
	ck, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}

	plain, _ := NewCoordinator(inst, DefaultConfig())
	if _, err := plain.Resume(nil); err == nil {
		t.Error("nil checkpoint: want error")
	}

	other := randomInstance(rng, 3, 5, 6)
	mismatched, _ := NewCoordinator(other, DefaultConfig())
	if _, err := mismatched.Resume(ck); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign instance: got %v", err)
	}

	restarts := DefaultConfig()
	restarts.Restarts = 1
	shuffled, _ := NewCoordinator(inst, restarts)
	if _, err := shuffled.Resume(ck); err == nil {
		t.Error("restarts > 0: want error")
	}

	private := DefaultConfig()
	private.Privacy = &PrivacyConfig{Epsilon: 1, Delta: 0.4, Noise: NewNoiseSource(1)}
	lppmCoord, _ := NewCoordinator(inst, private)
	if _, err := lppmCoord.Resume(ck); err == nil || !strings.Contains(err.Error(), "LPPM") {
		t.Errorf("noise-free snapshot into private coordinator: got %v", err)
	}

	noisy := ck
	noisy.HasNoise = true
	noisy.NoiseSeed = 5
	wrongSeed := DefaultConfig()
	wrongSeed.Privacy = &PrivacyConfig{Epsilon: 1, Delta: 0.4, Noise: NewNoiseSource(6)}
	wrongSeedCoord, _ := NewCoordinator(inst, wrongSeed)
	if _, err := wrongSeedCoord.Resume(noisy); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("wrong noise seed: got %v", err)
	}
}

func TestNoiseSourcePositionAndSeek(t *testing.T) {
	a := NewNoiseSource(77)
	ra := rand.New(a)
	var reference []float64
	for i := 0; i < 50; i++ {
		reference = append(reference, ra.Float64())
	}
	_, draws := a.Pos()
	if draws == 0 {
		t.Fatal("draws not counted")
	}

	// Seeking a fresh same-seed source to an intermediate position must
	// continue the stream exactly; rand.New must be re-wrapped after a
	// seek, since *rand.Rand buffers internal state.
	for _, k := range []int{0, 1, 17, 49} {
		b := NewNoiseSource(77)
		rb := rand.New(b)
		for i := 0; i < k; i++ {
			rb.Float64()
		}
		_, pos := b.Pos()
		c := NewNoiseSource(77)
		c.SeekTo(pos)
		rc := rand.New(c)
		for i := k; i < 50; i++ {
			got := rc.Float64()
			if math.Float64bits(got) != math.Float64bits(reference[i]) {
				t.Fatalf("after seek to draw %d: value %d = %v, want %v", pos, i, got, reference[i])
			}
		}
	}

	// SeekTo backwards rewinds through a re-seed.
	d := NewNoiseSource(77)
	rand.New(d).Float64()
	_, far := d.Pos()
	d.SeekTo(0)
	if _, now := d.Pos(); now != 0 {
		t.Fatalf("rewind left position %d", now)
	}
	if far == 0 {
		t.Fatal("no draws recorded before rewind")
	}
}

func TestSubproblemMultiplierRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	inst := randomInstance(rng, 2, 4, 5)
	sub, err := NewSubproblem(inst, 0, DefaultSubproblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Solve(inst.NewUFMat()); err != nil {
		t.Fatal(err)
	}
	mu := sub.Multipliers()
	if len(mu) == 0 {
		t.Fatal("no multipliers after a solve")
	}
	if err := sub.RestoreMultipliers(make([]float64, len(mu)+1)); err == nil {
		t.Error("wrong-length multipliers accepted")
	}
	if err := sub.RestoreMultipliers(mu); err != nil {
		t.Errorf("restore failed: %v", err)
	}
}
