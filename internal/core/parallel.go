package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"edgecache/internal/model"
)

// parallelJacobiEngine computes the exact trajectory of the reference
// jacobiEngine on a persistent worker pool. Parallelism is safe and
// deterministic by construction:
//
//   - Solve phase: the round's sub-problems are claimed dynamically off an
//     atomic cursor. Each SBS n touches only its own solver workspace
//     (c.subs[n]), its own caching-policy row (word-disjoint in the packed
//     bitset) and its own U×F block of the next-round tensor, so distinct
//     n never share memory. Every input (the pre-round policy and
//     aggregate) is read-only during the phase.
//   - LPPM pass: noise draws come from one shared sequential stream, so
//     the driver goroutine perturbs the uploads alone, in ascending SBS
//     order — the same draw sequence as the sequential engines. Solves
//     consume no randomness, so scheduling cannot reorder draws.
//   - Merge and repair phases: the aggregate rebuild and the overserve
//     repair are sharded by contiguous user-row ranges. Both accumulate
//     each (u,f) entry over n in ascending order (see
//     AggregateTracker.RebuildRows), so the reduction order — and
//     therefore every floating-point bit — is independent of the worker
//     count and of scheduling.
//
// Workers park between phases on a wake channel and signal a done channel
// after each phase, giving the engine a barrier per phase; the
// channel hand-offs also carry the happens-before edges that publish the
// driver's phase setup to the workers and the workers' writes back.
type parallelJacobiEngine struct {
	c       *Coordinator
	workers int

	// Per-worker y_{-n} scratch; everything else a worker touches is
	// either read-only or owned by the SBS index or row range it claimed.
	yMinus []model.Mat
	next   *model.RoutingPolicy

	// Phase plumbing, written by the driver goroutine before the wake
	// tokens and read by workers after them.
	st     *SweepState
	phase  int
	cursor atomic.Int64
	errs   []error

	started bool
	closed  bool
	// wake is per-worker: the merge and repair shards are assigned by
	// worker id, so each worker must run every phase exactly once — a
	// shared channel would let a fast worker steal a slow one's token and
	// leave that worker's shard stale.
	wake []chan struct{}
	done chan struct{} // one token back per worker per phase
	quit chan struct{}
}

// Worker phases of one Jacobi round.
const (
	phaseSolve = iota
	phaseMerge
	phaseRepair
)

func newParallelJacobiEngine(c *Coordinator, workers int) *parallelJacobiEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &parallelJacobiEngine{
		c:       c,
		workers: workers,
		yMinus:  make([]model.Mat, workers),
		next:    model.NewRoutingPolicy(c.inst),
		errs:    make([]error, workers),
		wake:    make([]chan struct{}, workers),
		done:    make(chan struct{}, workers),
		quit:    make(chan struct{}),
	}
	for w := range e.yMinus {
		e.yMinus[w] = c.inst.NewUFMat()
		e.wake[w] = make(chan struct{}, 1)
	}
	return e
}

func (e *parallelJacobiEngine) Kind() model.EngineKind { return model.EngineParallelJacobi }

// Close stops the worker pool. Idempotent.
func (e *parallelJacobiEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.started {
		close(e.quit)
	}
}

// ensureStarted spawns the pool on first use, so coordinators that never
// run the parallel engine never own goroutines.
func (e *parallelJacobiEngine) ensureStarted() error {
	if e.closed {
		return fmt.Errorf("core: parallel engine is closed")
	}
	if e.started {
		return nil
	}
	e.started = true
	for w := 0; w < e.workers; w++ {
		go e.worker(w)
	}
	return nil
}

// worker parks until the driver publishes a phase, runs its share, and
// reports back. The phase body lives in runPhase so the zero-alloc
// noalloc closure covers exactly the steady-state work, not the parking.
func (e *parallelJacobiEngine) worker(w int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.wake[w]:
			e.runPhase(w)
			select {
			case e.done <- struct{}{}:
			case <-e.quit:
				return
			}
		}
	}
}

// runPhase executes worker w's share of the published phase. It is the
// steady-state body of the pool and must stay allocation-free: the only
// state it touches is the pre-sized per-worker scratch, the per-SBS
// solver workspaces and the flat tensors.
//
//edgecache:noalloc
func (e *parallelJacobiEngine) runPhase(w int) {
	switch e.phase {
	case phaseSolve:
		e.solveShare(w)
	case phaseMerge:
		u0, u1 := e.rowRange(w)
		e.st.Tracker.RebuildRows(e.c.inst, e.st.Y, u0, u1)
	case phaseRepair:
		u0, u1 := e.rowRange(w)
		e.st.Tracker.RepairOverserveRows(e.c.inst, e.st.Y, u0, u1)
	}
}

// solveShare claims sub-problems off the shared cursor until the round is
// drained.
//
//edgecache:noalloc
func (e *parallelJacobiEngine) solveShare(w int) {
	c, inst, st := e.c, e.c.inst, e.st
	for {
		n := int(e.cursor.Add(1)) - 1
		if n >= inst.N {
			return
		}
		if e.errs[w] != nil {
			continue // drain the cursor; the round already failed
		}
		st.Tracker.YMinusInto(inst, st.Y, n, e.yMinus[w])
		sub, err := c.subs[n].Solve(e.yMinus[w])
		if err != nil {
			e.errs[w] = err
			continue
		}
		st.X.SetRow(n, sub.Cache)
		e.next.SetSBS(n, sub.Routing)
	}
}

// rowRange is worker w's static user-row shard [u0, u1) for the merge and
// repair phases. Contiguous ranges keep each worker on sequential memory.
//
//edgecache:noalloc
func (e *parallelJacobiEngine) rowRange(w int) (int, int) {
	u := e.c.inst.U
	return w * u / e.workers, (w + 1) * u / e.workers
}

// barrier publishes phase to the pool and blocks until every worker has
// finished its share.
func (e *parallelJacobiEngine) barrier(phase int) {
	e.phase = phase
	e.cursor.Store(0)
	for w := 0; w < e.workers; w++ {
		e.wake[w] <- struct{}{}
	}
	for w := 0; w < e.workers; w++ {
		<-e.done
	}
}

func (e *parallelJacobiEngine) Sweep(st *SweepState, sweep, first int, phaseDone func(int) error) error {
	if first != 0 {
		return fmt.Errorf("core: a jacobi round is atomic; cannot resume at phase %d", first)
	}
	if err := e.ensureStarted(); err != nil {
		return err
	}
	c, inst := e.c, e.c.inst
	e.st = st
	for w := range e.errs {
		e.errs[w] = nil
	}

	// Solve every sub-problem against the same pre-round aggregate; the
	// raw uploads land in e.next while st.Y stays frozen as the round's
	// read-only input.
	e.barrier(phaseSolve)
	for _, err := range e.errs {
		if err != nil {
			return err
		}
	}

	// Privacy pass: one shared noise stream means one drawer. Ascending
	// SBS order reproduces the sequential engines' draw sequence exactly.
	if c.lppm != nil {
		for n := 0; n < inst.N; n++ {
			upload, err := c.lppm.PerturbSBS(n, e.next.SBS(n))
			if err != nil {
				return err
			}
			e.next.SetSBS(n, upload)
		}
	}

	st.Y.Swap(e.next)
	e.barrier(phaseMerge)
	e.barrier(phaseRepair)
	e.st = nil
	return nil
}
