package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgecache/internal/trace"
)

func TestLRUEviction(t *testing.T) {
	c, err := NewLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(1) {
		t.Error("first access of 1 should miss")
	}
	c.Access(2)
	if !c.Access(1) { // 1 becomes most recent
		t.Error("access of cached 1 should hit")
	}
	c.Access(3) // evicts 2 (least recent)
	if c.Contains(2) {
		t.Error("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Errorf("contents = %v, want [1 3]", c.Contents())
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Errorf("Len/Cap = %d/%d, want 2/2", c.Len(), c.Cap())
	}
	if c.Name() != "LRU" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestFIFOEviction(t *testing.T) {
	c, err := NewFIFO(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(2)
	c.Access(1) // hit: does NOT refresh FIFO position
	c.Access(3) // evicts 1 (oldest admission)
	if c.Contains(1) {
		t.Error("1 should have been evicted (FIFO ignores recency)")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Errorf("contents = %v, want [2 3]", c.Contents())
	}
	if c.Name() != "FIFO" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestLFUEviction(t *testing.T) {
	c, err := NewLFU(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(1)
	c.Access(2)
	c.Access(3) // evicts 2 (count 1 < count 2 of content 1)
	if c.Contains(2) {
		t.Error("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Errorf("contents = %v, want [1 3]", c.Contents())
	}
	if c.Name() != "LFU" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestLFUTieBreakByRecency(t *testing.T) {
	c, err := NewLFU(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(2) // both count 1; 1 older
	c.Access(3) // evicts 1
	if c.Contains(1) || !c.Contains(2) {
		t.Errorf("contents = %v, want [2 3]", c.Contents())
	}
}

func TestZeroCapacity(t *testing.T) {
	for _, mk := range []func() (Policy, error){
		func() (Policy, error) { return NewLRU(0) },
		func() (Policy, error) { return NewFIFO(0) },
		func() (Policy, error) { return NewLFU(0) },
		func() (Policy, error) { return NewLRFU(0, 0.5) },
	} {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if c.Access(1) {
			t.Errorf("%s: zero-capacity cache hit", c.Name())
		}
		if c.Len() != 0 {
			t.Errorf("%s: zero-capacity cache stored content", c.Name())
		}
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewLRU(-1); err == nil {
		t.Error("NewLRU(-1): want error")
	}
	if _, err := NewFIFO(-1); err == nil {
		t.Error("NewFIFO(-1): want error")
	}
	if _, err := NewLFU(-1); err == nil {
		t.Error("NewLFU(-1): want error")
	}
	if _, err := NewLRFU(-1, 0.5); err == nil {
		t.Error("NewLRFU(-1, .5): want error")
	}
	if _, err := NewLRFU(1, -0.1); err == nil {
		t.Error("NewLRFU(1, -0.1): want error")
	}
	if _, err := NewLRFU(1, 1.5); err == nil {
		t.Error("NewLRFU(1, 1.5): want error")
	}
	if _, err := NewLRFU(1, math.NaN()); err == nil {
		t.Error("NewLRFU(1, NaN): want error")
	}
}

func TestLRFUCRFUpdate(t *testing.T) {
	c, err := NewLRFU(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c.AccessAt(7, 1) // CRF = 1
	if got := c.CRF(7); math.Abs(got-1) > 1e-12 {
		t.Errorf("CRF after first access = %v, want 1", got)
	}
	c.AccessAt(7, 3) // CRF = 1 + 1·2^(−0.5·2) = 1.5
	if got := c.CRF(7); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("CRF after second access = %v, want 1.5", got)
	}
	// Decay read at a later clock without access.
	c.AccessAt(8, 5) // advances clock to 5; CRF(7) = 1.5·2^(−0.5·2) = 0.75
	if got := c.CRF(7); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("decayed CRF = %v, want 0.75", got)
	}
	if got := c.CRF(99); got != 0 {
		t.Errorf("CRF of uncached = %v, want 0", got)
	}
	if c.Name() != "LRFU" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestLRFUBehavesLikeLFUAtLambdaZero(t *testing.T) {
	// λ=0: CRF is a pure reference count, so the frequent content survives.
	c, err := NewLRFU(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(1)
	c.Access(1)
	c.Access(2)
	c.Access(3) // must evict 2 (CRF 1 vs CRF 3 for content 1)
	if !c.Contains(1) || c.Contains(2) {
		t.Errorf("contents = %v, want [1 3]", c.Contents())
	}
}

func TestLRFUBehavesLikeLRUAtLambdaOne(t *testing.T) {
	// λ=1: CRF ≤ 2 always and recency dominates: an item referenced many
	// times long ago loses to one referenced once just now.
	c, err := NewLRFU(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Access(1) // heavily referenced early
	}
	c.Access(2)
	c.Access(2)
	// Push time far forward so content 1's CRF decays away, then insert.
	for i := 0; i < 20; i++ {
		c.Access(2)
	}
	c.Access(3) // victim should be 1 (stale) not 2 (fresh)
	if c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Errorf("contents = %v, want [2 3]", c.Contents())
	}
}

func TestLRFUAccessAtMonotonicClock(t *testing.T) {
	c, err := NewLRFU(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c.AccessAt(1, 10)
	c.AccessAt(2, 5) // out-of-order timestamp: clock must not go backwards
	if !c.Contains(2) {
		t.Error("out-of-order access not admitted")
	}
	c.Access(3) // logical tick from clock 10
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

// Property: no policy ever exceeds its capacity, and every just-accessed
// content is either cached or the capacity is zero.
func TestPolicyInvariantsProperty(t *testing.T) {
	prop := func(capRaw uint8, refs []uint8, lambdaRaw uint8) bool {
		capacity := int(capRaw % 10)
		lambda := float64(lambdaRaw%101) / 100
		policies := []Policy{}
		if lru, err := NewLRU(capacity); err == nil {
			policies = append(policies, lru)
		}
		if fifo, err := NewFIFO(capacity); err == nil {
			policies = append(policies, fifo)
		}
		if lfu, err := NewLFU(capacity); err == nil {
			policies = append(policies, lfu)
		}
		if lrfu, err := NewLRFU(capacity, lambda); err == nil {
			policies = append(policies, lrfu)
		}
		for _, p := range policies {
			for _, r := range refs {
				content := int(r % 20)
				p.Access(content)
				if p.Len() > capacity {
					return false
				}
				if capacity > 0 && !p.Contains(content) {
					return false
				}
				if capacity == 0 && p.Len() != 0 {
					return false
				}
			}
			if len(p.Contents()) != p.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a second access to the same content with no interleaving
// eviction pressure is always a hit.
func TestRepeatAccessHitsProperty(t *testing.T) {
	prop := func(content uint8) bool {
		for _, mk := range []func() (Policy, error){
			func() (Policy, error) { return NewLRU(4) },
			func() (Policy, error) { return NewFIFO(4) },
			func() (Policy, error) { return NewLFU(4) },
			func() (Policy, error) { return NewLRFU(4, 0.3) },
		} {
			p, err := mk()
			if err != nil {
				return false
			}
			p.Access(int(content))
			if !p.Access(int(content)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReplay(t *testing.T) {
	stream := []trace.Request{
		{Time: 1, Group: 0, Content: 1},
		{Time: 2, Group: 0, Content: 1},
		{Time: 3, Group: 1, Content: 2},
		{Time: 4, Group: 1, Content: 1},
	}
	lru, err := NewLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	stats := Replay(lru, stream)
	if stats.Requests != 4 || stats.Hits != 2 {
		t.Errorf("stats = %+v, want 4 requests, 2 hits", stats)
	}
	if got := stats.HitRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}

	lrfu, err := NewLRFU(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	stats = Replay(lrfu, stream)
	if stats.Hits != 2 {
		t.Errorf("LRFU replay hits = %d, want 2", stats.Hits)
	}
}

func TestMissRatioCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	var stream []trace.Request
	for i := 0; i < 5000; i++ {
		stream = append(stream, trace.Request{Time: float64(i), Content: rng.Intn(40)})
	}
	caps := []int{1, 5, 10, 20, 40}
	curve, err := MissRatioCurve("LRU", 0, caps, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(caps) {
		t.Fatalf("curve length = %d, want %d", len(curve), len(caps))
	}
	for i, m := range curve {
		if m < 0 || m > 1 {
			t.Fatalf("miss ratio %v out of range", m)
		}
		// LRU is a stack algorithm: more capacity never hurts.
		if i > 0 && m > curve[i-1]+1e-12 {
			t.Errorf("LRU miss ratio increased with capacity: %v", curve)
		}
	}
	// Capacity = catalog: only cold misses remain.
	if curve[len(curve)-1] > 40.0/5000+1e-9 {
		t.Errorf("full-catalog miss ratio = %v, want only cold misses", curve[len(curve)-1])
	}
	if _, err := MissRatioCurve("nope", 0, caps, stream); err == nil {
		t.Error("unknown policy: want error")
	}
}

func TestReplayEmpty(t *testing.T) {
	lru, _ := NewLRU(1)
	stats := Replay(lru, nil)
	if stats.Requests != 0 || stats.HitRate() != 0 {
		t.Errorf("empty replay stats = %+v", stats)
	}
}

// TestSkewedWorkloadHitRates checks the qualitative ordering on a Zipf
// workload: frequency-aware policies (LFU, LRFU with small λ) should beat
// FIFO on a heavily skewed, independently-drawn reference stream.
func TestSkewedWorkloadHitRates(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	weights, err := trace.Zipf(100, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	draw := func() int {
		u := rng.Float64()
		for i, c := range cum {
			if u <= c {
				return i
			}
		}
		return len(cum) - 1
	}
	var stream []trace.Request
	for i := 0; i < 20000; i++ {
		stream = append(stream, trace.Request{Time: float64(i), Content: draw()})
	}
	lfu, _ := NewLFU(10)
	fifo, _ := NewFIFO(10)
	lrfu, _ := NewLRFU(10, 0.01)
	lfuRate := Replay(lfu, stream).HitRate()
	fifoRate := Replay(fifo, stream).HitRate()
	lrfuRate := Replay(lrfu, stream).HitRate()
	if lfuRate <= fifoRate {
		t.Errorf("LFU (%v) should beat FIFO (%v) on Zipf workload", lfuRate, fifoRate)
	}
	if lrfuRate <= fifoRate {
		t.Errorf("LRFU (%v) should beat FIFO (%v) on Zipf workload", lrfuRate, fifoRate)
	}
}
