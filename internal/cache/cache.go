// Package cache implements the cache-replacement policies used by the
// paper's evaluation and by this repository's ablation benchmarks.
//
// The paper's baseline is LRFU ("a classic caching replacement scheme
// which swaps the cached content based on the recent request frequency and
// time", §V-A) — Lee et al.'s policy family that subsumes LRU and LFU via
// an exponential-decay weighting of past references. LRU, LFU and FIFO are
// provided alongside it for comparison experiments.
//
// All policies share the Policy interface and an internal logical clock
// that advances by one on every Access, which matches replaying a
// time-ordered request stream.
package cache

import (
	"container/list"
	"fmt"
	"sort"
)

// Policy is a cache-replacement policy over integer content identifiers.
// Implementations are not safe for concurrent use; each simulated SBS owns
// its own policy instance.
type Policy interface {
	// Access records a reference to the content and returns whether it was
	// already cached (a hit). On a miss the content is admitted, evicting
	// a victim when the cache is full. Zero-capacity caches never admit.
	Access(content int) bool
	// Contains reports whether the content is currently cached, without
	// touching recency/frequency state.
	Contains(content int) bool
	// Contents returns the cached contents in increasing identifier order.
	Contents() []int
	// Len returns the number of cached contents and Cap the capacity.
	Len() int
	Cap() int
	// Name identifies the policy in tables and benchmarks.
	Name() string
}

// sortedKeys returns map keys in increasing order; shared by Contents
// implementations.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// LRU evicts the least-recently-used content.
type LRU struct {
	capacity int
	order    *list.List // front = most recent
	items    map[int]*list.Element
}

// NewLRU returns an empty LRU cache. Capacity must be non-negative.
func NewLRU(capacity int) (*LRU, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: capacity must be non-negative, got %d", capacity)
	}
	return &LRU{capacity: capacity, order: list.New(), items: make(map[int]*list.Element)}, nil
}

// Access implements Policy.
func (c *LRU) Access(content int) bool {
	if el, ok := c.items[content]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.items) >= c.capacity {
		victim := c.order.Back()
		c.order.Remove(victim)
		delete(c.items, victim.Value.(int))
	}
	c.items[content] = c.order.PushFront(content)
	return false
}

// Contains implements Policy.
func (c *LRU) Contains(content int) bool { _, ok := c.items[content]; return ok }

// Contents implements Policy.
func (c *LRU) Contents() []int { return sortedKeys(c.items) }

// Len implements Policy.
func (c *LRU) Len() int { return len(c.items) }

// Cap implements Policy.
func (c *LRU) Cap() int { return c.capacity }

// Name implements Policy.
func (c *LRU) Name() string { return "LRU" }

// FIFO evicts in admission order regardless of later accesses.
type FIFO struct {
	capacity int
	order    *list.List // front = oldest
	items    map[int]*list.Element
}

// NewFIFO returns an empty FIFO cache. Capacity must be non-negative.
func NewFIFO(capacity int) (*FIFO, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: capacity must be non-negative, got %d", capacity)
	}
	return &FIFO{capacity: capacity, order: list.New(), items: make(map[int]*list.Element)}, nil
}

// Access implements Policy.
func (c *FIFO) Access(content int) bool {
	if _, ok := c.items[content]; ok {
		return true
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.items) >= c.capacity {
		victim := c.order.Front()
		c.order.Remove(victim)
		delete(c.items, victim.Value.(int))
	}
	c.items[content] = c.order.PushBack(content)
	return false
}

// Contains implements Policy.
func (c *FIFO) Contains(content int) bool { _, ok := c.items[content]; return ok }

// Contents implements Policy.
func (c *FIFO) Contents() []int { return sortedKeys(c.items) }

// Len implements Policy.
func (c *FIFO) Len() int { return len(c.items) }

// Cap implements Policy.
func (c *FIFO) Cap() int { return c.capacity }

// Name implements Policy.
func (c *FIFO) Name() string { return "FIFO" }

// LFU evicts the least-frequently-used content, breaking ties by least
// recent use (the common "LFU-aging-free" formulation).
type LFU struct {
	capacity int
	clock    int64
	items    map[int]*lfuEntry
}

type lfuEntry struct {
	count    int64
	lastUsed int64
}

// NewLFU returns an empty LFU cache. Capacity must be non-negative.
func NewLFU(capacity int) (*LFU, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: capacity must be non-negative, got %d", capacity)
	}
	return &LFU{capacity: capacity, items: make(map[int]*lfuEntry)}, nil
}

// Access implements Policy.
func (c *LFU) Access(content int) bool {
	c.clock++
	if e, ok := c.items[content]; ok {
		e.count++
		e.lastUsed = c.clock
		return true
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.items) >= c.capacity {
		victim, best := -1, lfuEntry{count: 1 << 62, lastUsed: 1 << 62}
		for k, e := range c.items {
			if e.count < best.count || (e.count == best.count && e.lastUsed < best.lastUsed) {
				victim, best = k, *e
			}
		}
		delete(c.items, victim)
	}
	c.items[content] = &lfuEntry{count: 1, lastUsed: c.clock}
	return false
}

// Contains implements Policy.
func (c *LFU) Contains(content int) bool { _, ok := c.items[content]; return ok }

// Contents implements Policy.
func (c *LFU) Contents() []int { return sortedKeys(c.items) }

// Len implements Policy.
func (c *LFU) Len() int { return len(c.items) }

// Cap implements Policy.
func (c *LFU) Cap() int { return c.capacity }

// Name implements Policy.
func (c *LFU) Name() string { return "LFU" }
