package model

import (
	"math"
	"strings"
	"testing"
)

// testInstance builds a tiny well-formed instance: 2 SBSs, 3 MU groups,
// 4 contents, full connectivity except SBS1-MU2.
func testInstance() *Instance {
	return &Instance{
		N: 2, U: 3, F: 4,
		Demand: [][]float64{
			{10, 5, 0, 1},
			{2, 2, 2, 2},
			{0, 0, 8, 8},
		},
		Links: [][]bool{
			{true, true, true},
			{true, true, false},
		},
		CacheCap:  []int{2, 1},
		Bandwidth: []float64{20, 10},
		EdgeCost: [][]float64{
			{1, 1, 1},
			{2, 2, 2},
		},
		BSCost: []float64{100, 120, 110},
	}
}

func TestValidateOK(t *testing.T) {
	if err := testInstance().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Instance)
		want   string
	}{
		{"zero dims", func(in *Instance) { in.N = 0 }, "dimensions"},
		{"demand rows", func(in *Instance) { in.Demand = in.Demand[:2] }, "Demand has"},
		{"demand cols", func(in *Instance) { in.Demand[1] = in.Demand[1][:3] }, "Demand[1]"},
		{"negative demand", func(in *Instance) { in.Demand[0][0] = -1 }, "non-negative rate"},
		{"nan demand", func(in *Instance) { in.Demand[0][0] = math.NaN() }, "non-negative rate"},
		{"inf demand", func(in *Instance) { in.Demand[0][0] = math.Inf(1) }, "non-negative rate"},
		{"links rows", func(in *Instance) { in.Links = in.Links[:1] }, "Links has"},
		{"links cols", func(in *Instance) { in.Links[0] = in.Links[0][:1] }, "Links[0]"},
		{"cachecap len", func(in *Instance) { in.CacheCap = nil }, "CacheCap has"},
		{"negative cachecap", func(in *Instance) { in.CacheCap[0] = -1 }, "CacheCap[0]"},
		{"bandwidth len", func(in *Instance) { in.Bandwidth = in.Bandwidth[:1] }, "Bandwidth has"},
		{"negative bandwidth", func(in *Instance) { in.Bandwidth[1] = -3 }, "Bandwidth[1]"},
		{"edgecost rows", func(in *Instance) { in.EdgeCost = in.EdgeCost[:1] }, "EdgeCost has"},
		{"edgecost cols", func(in *Instance) { in.EdgeCost[1] = in.EdgeCost[1][:2] }, "EdgeCost[1]"},
		{"negative edgecost", func(in *Instance) { in.EdgeCost[0][2] = -0.5 }, "EdgeCost[0][2]"},
		{"bscost len", func(in *Instance) { in.BSCost = in.BSCost[:1] }, "BSCost has"},
		{"nan bscost", func(in *Instance) { in.BSCost[2] = math.NaN() }, "BSCost[2]"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in := testInstance()
			tc.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateNil(t *testing.T) {
	var in *Instance
	if err := in.Validate(); err == nil {
		t.Fatal("Validate() on nil = nil, want error")
	}
}

func TestCloneIndependence(t *testing.T) {
	in := testInstance()
	cp := in.Clone()
	cp.Demand[0][0] = 999
	cp.Links[0][0] = false
	cp.CacheCap[0] = 99
	cp.Bandwidth[0] = 1
	cp.EdgeCost[0][0] = 7
	cp.BSCost[0] = 1
	if in.Demand[0][0] == 999 || !in.Links[0][0] || in.CacheCap[0] == 99 ||
		in.Bandwidth[0] == 1 || in.EdgeCost[0][0] == 7 || in.BSCost[0] == 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTotals(t *testing.T) {
	in := testInstance()
	if got, want := in.TotalDemand(), 40.0; got != want {
		t.Errorf("TotalDemand() = %v, want %v", got, want)
	}
	if got, want := in.LinkCount(), 5; got != want {
		t.Errorf("LinkCount() = %d, want %d", got, want)
	}
	// W = Σ d̂_u Σ_f λ_uf = 100·16 + 120·8 + 110·16 = 4320.
	if got, want := in.MaxCost(), 4320.0; got != want {
		t.Errorf("MaxCost() = %v, want %v", got, want)
	}
	// All groups are linked to at least one SBS here.
	if got, want := in.ReachableDemand(), 40.0; got != want {
		t.Errorf("ReachableDemand() = %v, want %v", got, want)
	}
}

func TestReachableDemandExcludesUnlinked(t *testing.T) {
	in := testInstance()
	in.Links[0][2] = false // MU2 now unlinked (SBS1-MU2 already false)
	if got, want := in.ReachableDemand(), 24.0; got != want {
		t.Errorf("ReachableDemand() = %v, want %v", got, want)
	}
}

func TestLinkedGroups(t *testing.T) {
	in := testInstance()
	got := in.LinkedGroups(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("LinkedGroups(1) = %v, want [0 1]", got)
	}
}

func TestEmptyRoutingCostIsMaxCost(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	cb := TotalServingCost(in, y)
	if cb.Edge != 0 {
		t.Errorf("Edge cost of empty routing = %v, want 0", cb.Edge)
	}
	if cb.Total != in.MaxCost() {
		t.Errorf("Total cost of empty routing = %v, want MaxCost %v", cb.Total, in.MaxCost())
	}
}

func TestCostBreakdown(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	// SBS0 fully serves MU0's demand for content 0 (λ=10, d=1, d̂=100).
	y.Set(0, 0, 0, 1)
	cb := TotalServingCost(in, y)
	if got, want := cb.Edge, 10.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Edge = %v, want %v", got, want)
	}
	if got, want := cb.Backhaul, 4320.0-1000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Backhaul = %v, want %v", got, want)
	}
	if got, want := cb.Total, 3330.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

func TestBackhaulClampsOverserve(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	// Both SBSs serve MU0's content 0 fully: aggregate = 2, residual clamps to 0.
	y.Set(0, 0, 0, 1)
	y.Set(1, 0, 0, 1)
	got := BackhaulServingCost(in, y)
	want := 4320.0 - 1000.0 // only content 0 of MU0 removed, not doubly credited
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Backhaul with overserve = %v, want %v", got, want)
	}
}

func TestAggregateMasksLinks(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	y.Set(1, 2, 0, 1) // SBS1 has no link to MU2: must not count
	agg := y.Aggregate(in)
	if agg.At(2, 0) != 0 {
		t.Errorf("Aggregate counted unlinked routing: %v", agg.At(2, 0))
	}
}

func TestAggregateExcept(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	y.Set(0, 0, 0, 0.25)
	y.Set(1, 0, 0, 0.5)
	agg := y.AggregateExcept(in, 0)
	if agg.At(0, 0) != 0.5 {
		t.Errorf("AggregateExcept(0)[0][0] = %v, want 0.5", agg.At(0, 0))
	}
	agg = y.AggregateExcept(in, 1)
	if agg.At(0, 0) != 0.25 {
		t.Errorf("AggregateExcept(1)[0][0] = %v, want 0.25", agg.At(0, 0))
	}
}

func TestLoad(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	y.Set(0, 0, 0, 0.5) // 0.5·10 = 5
	y.Set(0, 1, 3, 1.0) // 1·2 = 2
	if got, want := y.Load(in, 0), 7.0; got != want {
		t.Errorf("Load(0) = %v, want %v", got, want)
	}
}

func TestServedFraction(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	if got := ServedFraction(in, y); got != 0 {
		t.Errorf("ServedFraction(empty) = %v, want 0", got)
	}
	y.Set(0, 0, 0, 1) // 10 of 40 units
	if got, want := ServedFraction(in, y), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("ServedFraction = %v, want %v", got, want)
	}
	// Overserve must clamp per-demand at 1.
	y.Set(1, 0, 0, 1)
	if got, want := ServedFraction(in, y), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("ServedFraction with overserve = %v, want %v", got, want)
	}
}

func TestFeasibilityDetectsEachViolation(t *testing.T) {
	in := testInstance()

	feasX := func() *CachingPolicy { return NewCachingPolicy(in) }
	feasY := func() *RoutingPolicy { return NewRoutingPolicy(in) }

	t.Run("feasible-empty", func(t *testing.T) {
		if vs := CheckFeasibility(in, feasX(), feasY()); len(vs) != 0 {
			t.Fatalf("empty policy flagged infeasible: %s", FormatViolations(vs))
		}
	})
	t.Run("cache-capacity", func(t *testing.T) {
		x := feasX()
		x.Set(1, 0, true)
		x.Set(1, 1, true) // cap is 1
		vs := CheckFeasibility(in, x, feasY())
		requireViolation(t, vs, "cache-capacity (1)")
	})
	t.Run("routing-requires-cache", func(t *testing.T) {
		y := feasY()
		y.Set(0, 0, 0, 0.5)
		vs := CheckFeasibility(in, feasX(), y)
		requireViolation(t, vs, "routing-requires-cache (2)")
	})
	t.Run("bandwidth", func(t *testing.T) {
		x := feasX()
		x.Set(1, 0, true)
		y := feasY()
		y.Set(1, 0, 0, 1) // load 10 = B exactly: feasible
		if vs := CheckFeasibility(in, x, y); len(vs) != 0 {
			t.Fatalf("load at capacity flagged infeasible: %s", FormatViolations(vs))
		}
		y.Set(1, 1, 0, 0.5) // +1 unit: over B=10
		vs := CheckFeasibility(in, x, y)
		requireViolation(t, vs, "bandwidth (3)")
	})
	t.Run("no-overserve", func(t *testing.T) {
		x := feasX()
		x.Set(0, 3, true)
		x.Set(1, 3, true)
		y := feasY()
		y.Set(0, 1, 3, 0.8)
		y.Set(1, 1, 3, 0.8)
		vs := CheckFeasibility(in, x, y)
		requireViolation(t, vs, "no-overserve (4)")
	})
	t.Run("box", func(t *testing.T) {
		y := feasY()
		y.Set(0, 0, 0, -0.2)
		vs := CheckFeasibility(in, feasX(), y)
		requireViolation(t, vs, "box")
	})
	t.Run("no-link", func(t *testing.T) {
		x := feasX()
		x.Set(1, 0, true)
		y := feasY()
		y.Set(1, 2, 0, 0.3) // SBS1 not linked to MU2
		vs := CheckFeasibility(in, x, y)
		requireViolation(t, vs, "no-link")
	})
}

func requireViolation(t *testing.T, vs []Violation, constraint string) {
	t.Helper()
	for _, v := range vs {
		if v.Constraint == constraint {
			return
		}
	}
	t.Fatalf("violations %v do not include %q", vs, constraint)
}

func TestFeasibilityViolationCap(t *testing.T) {
	in := &Instance{
		N: 1, U: 30, F: 30,
		Demand:    make([][]float64, 30),
		Links:     [][]bool{make([]bool, 30)},
		CacheCap:  []int{0},
		Bandwidth: []float64{0},
		EdgeCost:  [][]float64{make([]float64, 30)},
		BSCost:    make([]float64, 30),
	}
	for u := range in.Demand {
		in.Demand[u] = make([]float64, 30)
	}
	y := NewRoutingPolicy(in)
	for u := 0; u < 30; u++ {
		for f := 0; f < 30; f++ {
			y.Set(0, u, f, -1) // 900 box violations
		}
	}
	vs := CheckFeasibility(in, NewCachingPolicy(in), y)
	if len(vs) != 100 {
		t.Fatalf("violation list length = %d, want capped at 100", len(vs))
	}
}

func TestPolicyClones(t *testing.T) {
	in := testInstance()
	x := NewCachingPolicy(in)
	x.Set(0, 1, true)
	xc := x.Clone()
	xc.Set(0, 1, false)
	if !x.Get(0, 1) {
		t.Fatal("CachingPolicy.Clone shares storage")
	}
	if got := x.Contents(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Contents(0) = %v, want [1]", got)
	}
	if got := x.Count(0); got != 1 {
		t.Fatalf("Count(0) = %d, want 1", got)
	}

	y := NewRoutingPolicy(in)
	y.Set(0, 0, 0, 0.5)
	yc := y.Clone()
	yc.Set(0, 0, 0, 0.9)
	if y.At(0, 0, 0) != 0.5 {
		t.Fatal("RoutingPolicy.Clone shares storage")
	}

	y.SetSBS(1, in.NewUFMat())
	if y.SBS(1).At(0, 0) != 0 {
		t.Fatal("SetSBS did not replace block")
	}
}

func TestSolutionString(t *testing.T) {
	s := &Solution{Cost: CostBreakdown{Edge: 1, Backhaul: 2, Total: 3}}
	if got := s.String(); !strings.Contains(got, "cost=3.00") {
		t.Errorf("String() = %q, want cost=3.00", got)
	}
}
