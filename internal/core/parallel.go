package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"edgecache/internal/model"
)

// parallelJacobiEngine computes the exact trajectory of the reference
// jacobiEngine on a persistent worker pool. Parallelism is safe and
// deterministic by construction:
//
//   - Solve phase: the round's sub-problems are claimed in chunks off an
//     atomic cursor (chunkSize claims per fetch-add, sized from
//     N/workers, so the fan-out cost is a handful of CASes per worker
//     rather than one per SBS). Each SBS n touches only its own solver
//     workspace (c.subs[n]), its own caching-policy row (word-disjoint in
//     the packed bitset) and its own U×F block of the next-round tensor,
//     so distinct n never share memory. Every input (the pre-round policy
//     and aggregate) is read-only during the phase. Memo hits — SBSs whose
//     inputs carry unchanged epochs — skip the solve and copy the cached
//     result instead; the driver sizes the number of woken workers from
//     the miss count, and a fully-hit non-private round wakes nobody.
//   - LPPM pass: noise draws come from one shared sequential stream, so
//     the driver goroutine perturbs the uploads alone, in ascending SBS
//     order — the same draw sequence as the sequential engines. Solves
//     consume no randomness, so scheduling cannot reorder draws.
//   - Merge and repair phases: the aggregate rebuild and the overserve
//     repair are sharded by contiguous user-row ranges and, with the memo
//     enabled, touch only the rows some bitwise-changed block contributes
//     to. Both accumulate each (u,f) entry over n in ascending order (see
//     AggregateTracker.RebuildRows), so the reduction order — and
//     therefore every floating-point bit — is independent of the worker
//     count, of scheduling, and of which rows were skipped (a skipped
//     row's recompute would reproduce its current bits).
//
// Workers park between phases on a wake channel and signal a done channel
// after each phase, giving the engine a barrier per phase; the
// channel hand-offs also carry the happens-before edges that publish the
// driver's phase setup to the workers and the workers' writes back.
type parallelJacobiEngine struct {
	c       *Coordinator
	workers int

	// Per-worker scratch: y_{-n} matrices for the solve phase and
	// length-F accumulation rows for the merge phase (shards of
	// RebuildRowsScratch must not share scratch). Everything else a worker
	// touches is either read-only or owned by the SBS index or row range
	// it claimed.
	yMinus       []model.Mat
	mergeScratch [][]float64
	next         *model.RoutingPolicy

	// Phase plumbing, written by the driver goroutine before the wake
	// tokens and read by workers after them.
	st        *SweepState
	phase     int
	cursor    atomic.Int64
	chunk     int // solve-phase claims per cursor fetch-add
	active    int // workers woken for the current phase; shard divisor
	memoRound bool
	errs      []error

	// Per-round dirty-set state. hit is the driver's memo pre-pass;
	// dirtyBlock is written only by the worker that claimed the SBS (or by
	// the driver's LPPM pass); dirtyRow is driver-only.
	hit        []bool
	dirtyBlock []bool
	dirtyRow   []bool

	// solves and skips are the engine-lifetime dirty-set accounting.
	solves, skips uint64

	started bool
	closed  bool
	// wake is per-worker: the merge and repair shards are assigned by
	// worker id, so each worker must run every phase exactly once — a
	// shared channel would let a fast worker steal a slow one's token and
	// leave that worker's shard stale.
	wake []chan struct{}
	done chan struct{} // one token back per worker per phase
	quit chan struct{}
}

// Worker phases of one Jacobi round.
const (
	phaseSolve = iota
	phaseMerge
	phaseRepair
)

func newParallelJacobiEngine(c *Coordinator, workers int) *parallelJacobiEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &parallelJacobiEngine{
		c:            c,
		workers:      workers,
		yMinus:       make([]model.Mat, workers),
		mergeScratch: make([][]float64, workers),
		next:         model.NewRoutingPolicy(c.inst),
		errs:         make([]error, workers),
		hit:          make([]bool, c.inst.N),
		dirtyBlock:   make([]bool, c.inst.N),
		dirtyRow:     make([]bool, c.inst.U),
		wake:         make([]chan struct{}, workers),
		done:         make(chan struct{}, workers),
		quit:         make(chan struct{}),
	}
	// Chunked claims amortize the cursor contention: ~4 chunks per worker
	// keeps dynamic balancing while shrinking the CAS count from N to
	// ~4·workers per round.
	e.chunk = c.inst.N / (4 * workers)
	if e.chunk < 1 {
		e.chunk = 1
	}
	for w := range e.yMinus {
		e.yMinus[w] = c.inst.NewUFMat()
		e.mergeScratch[w] = make([]float64, c.inst.F)
		e.wake[w] = make(chan struct{}, 1)
	}
	return e
}

func (e *parallelJacobiEngine) Kind() model.EngineKind { return model.EngineParallelJacobi }

func (e *parallelJacobiEngine) workCounts() (uint64, uint64) { return e.solves, e.skips }

// Close stops the worker pool. Idempotent.
func (e *parallelJacobiEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.started {
		close(e.quit)
	}
}

// ensureStarted spawns the pool on first use, so coordinators that never
// run the parallel engine never own goroutines.
func (e *parallelJacobiEngine) ensureStarted() error {
	if e.closed {
		return fmt.Errorf("core: parallel engine is closed")
	}
	if e.started {
		return nil
	}
	e.started = true
	for w := 0; w < e.workers; w++ {
		go e.worker(w)
	}
	return nil
}

// worker parks until the driver publishes a phase, runs its share, and
// reports back. The phase body lives in runPhase so the zero-alloc
// noalloc closure covers exactly the steady-state work, not the parking.
func (e *parallelJacobiEngine) worker(w int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.wake[w]:
			e.runPhase(w)
			select {
			case e.done <- struct{}{}:
			case <-e.quit:
				return
			}
		}
	}
}

// runPhase executes worker w's share of the published phase. It is the
// steady-state body of the pool and must stay allocation-free: the only
// state it touches is the pre-sized per-worker scratch, the per-SBS
// solver workspaces and the flat tensors.
//
//edgecache:noalloc
func (e *parallelJacobiEngine) runPhase(w int) {
	switch e.phase {
	case phaseSolve:
		e.solveShare(w)
	case phaseMerge:
		// With the memo on, rebuild only the maximal runs of dirty rows in
		// the shard: contiguous runs keep the merge cache-blocked — each
		// call streams sequential aggregate and policy memory.
		u0, u1 := e.rowRange(w)
		if !e.memoRound {
			e.st.Tracker.RebuildRowsScratch(e.c.inst, e.st.Y, u0, u1, e.mergeScratch[w])
			return
		}
		for r0 := u0; r0 < u1; {
			if !e.dirtyRow[r0] {
				r0++
				continue
			}
			r1 := r0 + 1
			for r1 < u1 && e.dirtyRow[r1] {
				r1++
			}
			e.st.Tracker.RebuildRowsScratch(e.c.inst, e.st.Y, r0, r1, e.mergeScratch[w])
			r0 = r1
		}
	case phaseRepair:
		u0, u1 := e.rowRange(w)
		if !e.memoRound {
			e.st.Tracker.RepairOverserveRows(e.c.inst, e.st.Y, u0, u1)
			return
		}
		for r0 := u0; r0 < u1; {
			if !e.dirtyRow[r0] {
				r0++
				continue
			}
			r1 := r0 + 1
			for r1 < u1 && e.dirtyRow[r1] {
				r1++
			}
			e.st.Tracker.RepairOverserveRows(e.c.inst, e.st.Y, r0, r1)
			r0 = r1
		}
	}
}

// solveShare claims chunks of sub-problems off the shared cursor until the
// round is drained. Memo hits copy the cached result; misses solve.
//
//edgecache:noalloc
func (e *parallelJacobiEngine) solveShare(w int) {
	c, inst, st := e.c, e.c.inst, e.st
	for {
		base := int(e.cursor.Add(int64(e.chunk))) - e.chunk
		if base >= inst.N {
			return
		}
		top := base + e.chunk
		if top > inst.N {
			top = inst.N
		}
		for n := base; n < top; n++ {
			if e.errs[w] != nil {
				continue // drain the cursor; the round already failed
			}
			if e.hit[n] {
				// The cached result is bit-identical to what a re-solve
				// would produce; install its clean routing so the LPPM pass
				// (or the swap) sees exactly what the reference engine
				// would have written.
				sub := c.subs[n].cachedResult()
				st.X.SetRow(n, sub.Cache)
				e.next.SetSBS(n, sub.Routing)
				e.dirtyBlock[n] = false
				continue
			}
			st.Tracker.YMinusInto(inst, st.Y, n, e.yMinus[w])
			sub, err := c.subs[n].Solve(e.yMinus[w])
			if err != nil {
				e.errs[w] = err
				continue
			}
			if e.memoRound {
				c.subs[n].memoCapture(st.Tracker)
			}
			st.X.SetRow(n, sub.Cache)
			// Change detection against the pre-round block (st.Y is frozen
			// for the phase). Without the memo the round is the full
			// reference: every block counts as dirty.
			e.dirtyBlock[n] = !e.memoRound || !st.Y.SBS(n).BitsEqual(sub.Routing)
			e.next.SetSBS(n, sub.Routing)
		}
	}
}

// rowRange is worker w's static user-row shard [u0, u1) for the merge and
// repair phases, split across the workers woken for the phase. Contiguous
// ranges keep each worker on sequential memory.
//
//edgecache:noalloc
func (e *parallelJacobiEngine) rowRange(w int) (int, int) {
	u := e.c.inst.U
	return w * u / e.active, (w + 1) * u / e.active
}

// barrier publishes phase to the first `active` workers and blocks until
// every one of them has finished its share. Sizing active from the actual
// work (miss count, dirty-row count) is what keeps all-hit and mostly-hit
// rounds from paying workers·(wake+park) for nothing.
func (e *parallelJacobiEngine) barrier(phase, active int) {
	e.phase = phase
	e.active = active
	e.cursor.Store(0)
	for w := 0; w < active; w++ {
		e.wake[w] <- struct{}{}
	}
	for w := 0; w < active; w++ {
		<-e.done
	}
}

// clampWorkers bounds a work-derived worker count to [1, workers].
func (e *parallelJacobiEngine) clampWorkers(work int) int {
	if work < 1 {
		work = 1
	}
	if work > e.workers {
		work = e.workers
	}
	return work
}

func (e *parallelJacobiEngine) Sweep(st *SweepState, sweep, first int, phaseDone func(int) error) error {
	if first != 0 {
		return fmt.Errorf("core: a jacobi round is atomic; cannot resume at phase %d", first)
	}
	if err := e.ensureStarted(); err != nil {
		return err
	}
	c, inst := e.c, e.c.inst
	memo := c.incremental()
	e.memoRound = memo

	// Memo pre-pass (driver-side, serial): classify each SBS before any
	// worker wakes, so the wake count can be sized from the misses.
	misses := 0
	for n := 0; n < inst.N; n++ {
		e.hit[n] = memo && c.subs[n].memoHit(st.Tracker)
		if !e.hit[n] {
			misses++
		}
	}
	if memo && c.lppm == nil && misses == 0 {
		// Fully-hit non-private round: every block would be re-derived
		// bit-identically, so the round is a no-op — no wakeups, no swap,
		// no merge. The γ rule sees an identical cost and stops.
		e.skips += uint64(inst.N)
		return nil
	}

	e.st = st
	for w := range e.errs {
		e.errs[w] = nil
	}

	// Solve every miss against the same pre-round aggregate (hits copy
	// their cached result); the raw uploads land in e.next while st.Y
	// stays frozen as the round's read-only input. Hit copies are memcpy
	// cheap, so the wake count follows the solve work.
	chunks := (inst.N + e.chunk - 1) / e.chunk
	solveWorkers := e.clampWorkers(misses)
	if solveWorkers > chunks {
		solveWorkers = chunks
	}
	e.barrier(phaseSolve, solveWorkers)
	for _, err := range e.errs {
		if err != nil {
			c.invalidateMemos()
			e.st = nil
			return err
		}
	}
	e.solves += uint64(misses)
	e.skips += uint64(inst.N - misses)

	// Privacy pass: one shared noise stream means one drawer. Ascending
	// SBS order reproduces the sequential engines' draw sequence exactly.
	// The perturbed upload decides the block's dirtiness.
	if c.lppm != nil {
		for n := 0; n < inst.N; n++ {
			upload, err := c.lppm.PerturbSBS(n, e.next.SBS(n))
			if err != nil {
				c.invalidateMemos()
				e.st = nil
				return err
			}
			e.dirtyBlock[n] = !memo || !st.Y.SBS(n).BitsEqual(upload)
			e.next.SetSBS(n, upload)
		}
	}

	st.Y.Swap(e.next)
	if !markDirtyRows(inst, e.dirtyBlock, e.dirtyRow) {
		// Every upload reproduced its previous bits; the aggregate is
		// already exact and repaired.
		e.st = nil
		return nil
	}
	st.Tracker.BeginPhase()
	dirtyRows := 0
	for n, dirty := range e.dirtyBlock {
		if dirty {
			st.Tracker.MarkBlockDirty(n)
		}
	}
	for _, dirty := range e.dirtyRow {
		if dirty {
			dirtyRows++
		}
	}
	mergeWorkers := e.workers
	if memo {
		// A worker per handful of dirty rows: a nearly-converged round
		// re-merges a sliver of the aggregate and should not pay
		// workers·(wake+park) to do it.
		mergeWorkers = e.clampWorkers((dirtyRows + 15) / 16)
	}
	e.barrier(phaseMerge, mergeWorkers)
	e.barrier(phaseRepair, mergeWorkers)
	e.st = nil
	return nil
}
