package chaos

import (
	"math"
	"strings"
	"testing"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/sim"
)

// exactMatch asserts the chaos run reproduced the fault-free trajectory
// bit-for-bit: same history, same final cost, same policies.
func exactMatch(t *testing.T, got, want *core.RunResult) {
	t.Helper()
	if len(got.History) != len(want.History) {
		t.Fatalf("history length %d, want %d (histories %v vs %v)",
			len(got.History), len(want.History), got.History, want.History)
	}
	for i := range got.History {
		if math.Float64bits(got.History[i]) != math.Float64bits(want.History[i]) {
			t.Fatalf("history[%d] = %v, want %v (bit difference)", i, got.History[i], want.History[i])
		}
	}
	if got.Converged != want.Converged || got.Sweeps != want.Sweeps {
		t.Fatalf("converged/sweeps = %v/%d, want %v/%d", got.Converged, got.Sweeps, want.Converged, want.Sweeps)
	}
	if math.Float64bits(got.Solution.Cost.Total) != math.Float64bits(want.Solution.Cost.Total) {
		t.Fatalf("final cost %v, want %v", got.Solution.Cost.Total, want.Solution.Cost.Total)
	}
	if got.Solution.Caching.DiffCount(want.Solution.Caching) != 0 {
		t.Fatal("final caching policy differs")
	}
}

// TestBSCrashResumeExact is the tentpole acceptance check at the chaos
// layer: kill the coordinator mid-run on clean links, let the runner
// recover it from its newest sweep-boundary checkpoint, and the completed
// run is bit-identical to one that never crashed.
func TestBSCrashResumeExact(t *testing.T) {
	// This instance takes 4 sweeps to converge, so the sweep-2 announce
	// (the crash trigger point) is always reached and two more sweeps run
	// after recovery.
	inst := testInstance(16, 8, 12, 16)
	base := faultFreeBaseline(t, inst)
	if base.Sweeps < 3 {
		t.Fatalf("baseline converged in %d sweeps; the crash point would never be reached", base.Sweeps)
	}

	sched, err := ParseSpec("bscrash=2+1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		BS:       sim.BSConfig{}, // Checkpoint nil: the runner must self-install a store
		Sub:      core.DefaultSubproblemConfig(),
		Schedule: sched,
	}
	res, report, err := Run(testCtx(t), inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exactMatch(t, res, base)

	if len(report.Unfired) != 0 {
		t.Errorf("unfired events: %v", report.Unfired)
	}
	var sawCrash, sawRestart bool
	for _, ev := range report.Fired {
		switch ev.Op {
		case OpBSCrash:
			sawCrash = true
			if ev.AtSweep != 2 {
				t.Errorf("bs-crash fired at sweep %d, want 2", ev.AtSweep)
			}
		case OpBSRestart:
			sawRestart = true
			if ev.AtSweep != 2 {
				t.Errorf("bs-restart resumed at sweep %d, want checkpoint boundary 2", ev.AtSweep)
			}
		}
	}
	if !sawCrash || !sawRestart {
		t.Fatalf("fired events missing crash/restart: %v", report.Fired)
	}
	// The recovery handshake must have rehydrated every SBS exactly once.
	if got := report.Counter.Count(sim.EventStateSync); got != inst.N {
		t.Errorf("state-sync events = %d, want %d", got, inst.N)
	}
	if got := report.Counter.Count(sim.EventStateSyncMiss); got != 0 {
		t.Errorf("state-sync misses on clean links = %d, want 0", got)
	}
}

// TestBSCrashUnderLoss combines a coordinator crash with 30% message loss:
// the run must still recover from its checkpoint, converge, and land
// within 5% of the fault-free cost.
func TestBSCrashUnderLoss(t *testing.T) {
	inst := testInstance(42, 3, 6, 8)
	store := model.NewMemCheckpointStore(0)
	sched, err := ParseSpec("seed=7,drop=0.3,bscrash=1+1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		BS: sim.BSConfig{
			PhaseTimeout:    800 * time.Millisecond,
			ProbeTimeout:    150 * time.Millisecond,
			AnnounceRetries: 5,
			MaxSweeps:       40,
			Checkpoint:      &core.CheckpointConfig{Sink: store, EverySweeps: 1},
		},
		Sub:      core.DefaultSubproblemConfig(),
		Schedule: sched,
	}
	res, report, err := Run(testCtx(t), inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("run did not converge (sweeps=%d, faults=%+v)", res.Sweeps, res.TotalFaults())
	}
	if len(report.Unfired) != 0 {
		t.Errorf("unfired events: %v", report.Unfired)
	}
	if store.Len() == 0 {
		t.Error("no checkpoints captured")
	}
	base := faultFreeBaseline(t, inst)
	if diff := relDiff(res.Solution.Cost.Total, base.Solution.Cost.Total); diff > 0.05 {
		t.Errorf("final cost %v is %.1f%% from fault-free %v",
			res.Solution.Cost.Total, diff*100, base.Solution.Cost.Total)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible solution:\n%s", model.FormatViolations(vs))
	}
}

// TestBSCrashNoRestart: a crash with no scheduled recovery is a hard stop,
// reported as an error rather than a silent partial result.
func TestBSCrashNoRestart(t *testing.T) {
	inst := testInstance(1, 3, 5, 6)
	sched, err := ParseSpec("bscrash=1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		BS:       sim.BSConfig{},
		Sub:      core.DefaultSubproblemConfig(),
		Schedule: sched,
	}
	_, _, err = Run(testCtx(t), inst, cfg)
	if err == nil || !strings.Contains(err.Error(), "no scheduled restart") {
		t.Fatalf("crash without restart: got %v", err)
	}
}

func TestParseSpecBSCrash(t *testing.T) {
	sched, err := ParseSpec("bscrash=2+1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Sweep: 2, SBS: -1, Op: OpBSCrash},
		{Sweep: 3, SBS: -1, Op: OpBSRestart},
	}
	if len(sched.Events) != len(want) {
		t.Fatalf("events = %v, want %v", sched.Events, want)
	}
	for i, ev := range sched.Events {
		if ev != want[i] {
			t.Errorf("event[%d] = %+v, want %+v", i, ev, want[i])
		}
	}

	sched, err = ParseSpec("bsrestart=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 1 || sched.Events[0] != (Event{Sweep: 5, SBS: -1, Op: OpBSRestart}) {
		t.Fatalf("events = %v", sched.Events)
	}

	for _, bad := range []string{"bscrash=", "bscrash=a", "bscrash=2+0", "bscrash=2+-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("%q: want parse error", bad)
		}
	}

	// BS-level ops carry no SBS target; a stray one must not validate.
	badSched := Schedule{Events: []Event{{Sweep: 1, SBS: 0, Op: OpBSCrash}}}
	if err := badSched.Validate(3); err == nil {
		t.Error("bs-crash with an SBS target: want validation error")
	}
	okSched := Schedule{Events: []Event{{Sweep: 1, SBS: -1, Op: OpBSCrash}, {Sweep: 2, SBS: -1, Op: OpBSRestart}}}
	if err := okSched.Validate(3); err != nil {
		t.Errorf("valid bs schedule rejected: %v", err)
	}

	if got := OpBSCrash.String(); got != "bs-crash" {
		t.Errorf("OpBSCrash = %q", got)
	}
	if got := OpBSRestart.String(); got != "bs-restart" {
		t.Errorf("OpBSRestart = %q", got)
	}
}
