package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/dp"
	"edgecache/internal/model"
	"edgecache/internal/transport"
)

func randomInstance(rng *rand.Rand, n, u, f int) *model.Instance {
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1 + rng.Float64()*3
		}
		inst.CacheCap[i] = 1 + rng.Intn(f/2+1)
		inst.Bandwidth[i] = 5 + rng.Float64()*40
	}
	return inst
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestDistributedMatchesInProcess: without privacy the protocol run must
// produce exactly the in-process coordinator's result — same history, same
// final cost, same policies.
func TestDistributedMatchesInProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		inst := randomInstance(rng, 3, 5, 6)

		coord, err := core.NewCoordinator(inst, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		want, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}

		got, err := RunInmem(testCtx(t), inst, BSConfig{}, core.DefaultSubproblemConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}

		if got.Sweeps != want.Sweeps || got.Converged != want.Converged {
			t.Errorf("trial %d: sweeps/converged = %d/%v, want %d/%v",
				trial, got.Sweeps, got.Converged, want.Sweeps, want.Converged)
		}
		if len(got.History) != len(want.History) {
			t.Fatalf("trial %d: history lengths differ: %d vs %d", trial, len(got.History), len(want.History))
		}
		for i := range got.History {
			if math.Abs(got.History[i]-want.History[i]) > 1e-9 {
				t.Errorf("trial %d: history[%d] = %v, want %v", trial, i, got.History[i], want.History[i])
			}
		}
		if math.Abs(got.Solution.Cost.Total-want.Solution.Cost.Total) > 1e-9 {
			t.Errorf("trial %d: cost %v, want %v", trial, got.Solution.Cost.Total, want.Solution.Cost.Total)
		}
		for n := 0; n < inst.N; n++ {
			for f := 0; f < inst.F; f++ {
				if got.Solution.Caching.Get(n, f) != want.Solution.Caching.Get(n, f) {
					t.Fatalf("trial %d: cache[%d][%d] differs", trial, n, f)
				}
			}
		}
	}
}

func TestDistributedWithPrivacyFeasibleAndAccounted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := randomInstance(rng, 3, 5, 6)
	var acct dp.Accountant
	privacyFor := func(n int) *core.PrivacyConfig {
		return &core.PrivacyConfig{
			Epsilon:    0.1,
			Delta:      0.5,
			Rng:        rand.New(rand.NewSource(int64(100 + n))),
			Accountant: &acct,
		}
	}
	res, err := RunInmem(testCtx(t), inst, BSConfig{}, core.DefaultSubproblemConfig(), privacyFor)
	if err != nil {
		t.Fatal(err)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible solution:\n%s", model.FormatViolations(vs))
	}
	if got, want := acct.Count(), res.Sweeps*inst.N; got != want {
		t.Errorf("accountant count = %d, want %d", got, want)
	}
	if len(acct.ByLabel()) != inst.N {
		t.Errorf("labels = %d, want %d", len(acct.ByLabel()), inst.N)
	}
}

// TestBSToleratesCrashedSBS: one SBS never responds; the BS must still
// converge using the remaining SBSs, with the dead SBS contributing
// nothing.
func TestBSToleratesCrashedSBS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(rng, 3, 5, 6)
	hub := transport.NewHub()
	bsEp, err := hub.Register("bs", 16)
	if err != nil {
		t.Fatal(err)
	}
	sbsNames := []string{"sbs-0", "sbs-1", "sbs-2"}
	ctx := testCtx(t)

	// Only SBS 0 and 2 run; sbs-1 is registered but silent.
	silent, err := hub.Register("sbs-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	for _, n := range []int{0, 2} {
		ep, err := hub.Register(sbsNames[n], 4)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, ep, "bs")
		if err != nil {
			t.Fatal(err)
		}
		go agent.Run(ctx) //nolint — exits on MsgDone or ctx cancel
	}

	bs, err := NewBSAgent(inst, BSConfig{PhaseTimeout: 50 * time.Millisecond}, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bs.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("BS did not converge despite two live SBSs")
	}
	// The dead SBS's routing must be all zero.
	for u := 0; u < inst.U; u++ {
		for f := 0; f < inst.F; f++ {
			if res.Solution.Routing.At(1, u, f) != 0 {
				t.Fatal("silent SBS has nonzero routing")
			}
		}
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible:\n%s", model.FormatViolations(vs))
	}
}

// TestDistributedOverTCP runs the full protocol over real sockets.
func TestDistributedOverTCP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := randomInstance(rng, 2, 4, 5)
	ctx := testCtx(t)

	bsEp, err := transport.NewTCPEndpoint("bs", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bsEp.Close()
	sbsNames := []string{"sbs-0", "sbs-1"}
	var sbsEps []*transport.TCPEndpoint
	for _, name := range sbsNames {
		ep, err := transport.NewTCPEndpoint(name, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		sbsEps = append(sbsEps, ep)
	}
	for i, name := range sbsNames {
		bsEp.AddPeer(name, sbsEps[i].Addr())
		sbsEps[i].AddPeer("bs", bsEp.Addr())
	}

	for n := range sbsNames {
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, sbsEps[n], "bs")
		if err != nil {
			t.Fatal(err)
		}
		go agent.Run(ctx) //nolint — exits on MsgDone or ctx cancel
	}

	bs, err := NewBSAgent(inst, BSConfig{}, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bs.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Solution.Cost.Total-want.Solution.Cost.Total) > 1e-9 {
		t.Errorf("TCP cost %v, in-process cost %v", got.Solution.Cost.Total, want.Solution.Cost.Total)
	}
}

// TestDistributedSurvivesLossyLinks: with a drop+duplicate fault model on
// the BS side, timeouts skip lost phases and stale-message filtering
// discards duplicates; the run must still produce a feasible solution.
func TestDistributedSurvivesLossyLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, 3, 5, 6)
	hub := transport.NewHub()
	rawBs, err := hub.Register("bs", 64)
	if err != nil {
		t.Fatal(err)
	}
	bsEp, err := transport.NewFaultyEndpoint(rawBs, transport.FaultConfig{
		DropProb: 0.2, DupProb: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	sbsNames := []string{"sbs-0", "sbs-1", "sbs-2"}
	for n, name := range sbsNames {
		ep, err := hub.Register(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		faulty, err := transport.NewFaultyEndpoint(ep, transport.FaultConfig{
			DropProb: 0.2, DupProb: 0.2, Seed: int64(20 + n),
		})
		if err != nil {
			t.Fatal(err)
		}
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, faulty, "bs")
		if err != nil {
			t.Fatal(err)
		}
		go agent.Run(ctx) //nolint — exits on MsgDone or ctx cancel
	}
	bs, err := NewBSAgent(inst, BSConfig{PhaseTimeout: 50 * time.Millisecond, MaxSweeps: 20}, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bs.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible under lossy links:\n%s", model.FormatViolations(vs))
	}
	// Despite losses some value must have been created.
	if res.Solution.Cost.Total >= inst.MaxCost() {
		t.Error("lossy run produced no edge serving at all")
	}
}

// TestSBSCrashAndRejoin: an SBS dies after the first sweep and a
// replacement agent joins under the same name mid-run; the BS must keep
// making progress throughout and end feasible.
func TestSBSCrashAndRejoin(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := randomInstance(rng, 3, 5, 6)
	hub := transport.NewHub()
	bsEp, err := hub.Register("bs", 32)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	sbsNames := []string{"sbs-0", "sbs-1", "sbs-2"}

	// SBS 1 and 2 run normally.
	for _, n := range []int{1, 2} {
		ep, err := hub.Register(sbsNames[n], 8)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, ep, "bs")
		if err != nil {
			t.Fatal(err)
		}
		go agent.Run(ctx) //nolint — exits on MsgDone or ctx cancel
	}

	// SBS 0 crashes after its first phase: run it with a cancellable
	// context and kill it once it has served one announcement.
	ep0, err := hub.Register("sbs-0", 8)
	if err != nil {
		t.Fatal(err)
	}
	crashCtx, crash := context.WithCancel(ctx)
	agent0, err := NewSBSAgent(inst, 0, core.DefaultSubproblemConfig(), nil, ep0, "bs")
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan struct{}, 1)
	go func() {
		// Intercept: serve exactly one phase by running the agent and
		// crashing it shortly after the BS's first announcement lands.
		go agent0.Run(crashCtx) //nolint
		<-firstDone
		crash()
		ep0.Close()
	}()

	bs, err := NewBSAgent(inst, BSConfig{PhaseTimeout: 100 * time.Millisecond, MaxSweeps: 6, Gamma: 1e-12}, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}
	// Crash SBS 0 once sweep 0 completed, then rejoin it during sweep 2.
	go func() {
		time.Sleep(200 * time.Millisecond)
		firstDone <- struct{}{}
		time.Sleep(300 * time.Millisecond)
		ep0b, err := hub.Register("sbs-0", 8)
		if err != nil {
			return // name still held; BS just keeps timing out, still valid
		}
		rejoined, err := NewSBSAgent(inst, 0, core.DefaultSubproblemConfig(), nil, ep0b, "bs")
		if err != nil {
			t.Error(err)
			return
		}
		go rejoined.Run(ctx) //nolint
	}()

	res, err := bs.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps == 0 {
		t.Fatal("BS made no progress")
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible after crash/rejoin:\n%s", model.FormatViolations(vs))
	}
	if res.Solution.Cost.Total >= inst.MaxCost() {
		t.Error("no edge serving despite two always-alive SBSs")
	}
}

func TestAgentConstructorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := randomInstance(rng, 2, 3, 4)
	hub := transport.NewHub()
	ep, err := hub.Register("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBSAgent(inst, BSConfig{}, nil, []string{"a", "b"}); err == nil {
		t.Error("nil endpoint: want error")
	}
	if _, err := NewBSAgent(inst, BSConfig{}, ep, []string{"a"}); err == nil {
		t.Error("wrong sbsNames length: want error")
	}
	if _, err := NewBSAgent(&model.Instance{N: 0}, BSConfig{}, ep, nil); err == nil {
		t.Error("invalid instance: want error")
	}
	if _, err := NewSBSAgent(inst, 0, core.SubproblemConfig{}, nil, nil, "bs"); err == nil {
		t.Error("nil endpoint: want error")
	}
	if _, err := NewSBSAgent(inst, 0, core.SubproblemConfig{}, nil, ep, ""); err == nil {
		t.Error("empty BS name: want error")
	}
	if _, err := NewSBSAgent(inst, 9, core.SubproblemConfig{}, nil, ep, "bs"); err == nil {
		t.Error("bad SBS index: want error")
	}
	bad := &core.PrivacyConfig{Epsilon: -1}
	if _, err := NewSBSAgent(inst, 0, core.SubproblemConfig{}, bad, ep, "bs"); err == nil {
		t.Error("bad privacy config: want error")
	}
}

func TestSBSAgentStopsOnContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, 1, 3, 4)
	hub := transport.NewHub()
	ep, err := hub.Register("sbs-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewSBSAgent(inst, 0, core.DefaultSubproblemConfig(), nil, ep, "bs")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- agent.Run(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled agent returned nil, want context error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not stop on cancel")
	}
}
