package model

import "testing"

// Every //edgecache:noalloc function in this package gets an
// AllocsPerRun regression test: the edgelint noalloc analyzer proves the
// static call closure clean, and these tests pin the runtime behavior it
// cannot see (interface dispatch, escape-analysis regressions).

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, fn); avg != 0 {
		t.Errorf("%s allocates %.1f times per call, want 0", name, avg)
	}
}

func TestMatAccessorsZeroAllocs(t *testing.T) {
	m := NewMat(4, 8)
	src := NewMat(4, 8)
	for u := 0; u < 4; u++ {
		for f := 0; f < 8; f++ {
			src.Set(u, f, float64(u*8+f))
		}
	}
	var sink float64
	assertZeroAllocs(t, "Mat.At", func() { sink += m.At(2, 3) })
	assertZeroAllocs(t, "Mat.Set", func() { m.Set(2, 3, 1.5) })
	assertZeroAllocs(t, "Mat.Add", func() { m.Add(2, 3, 0.5) })
	assertZeroAllocs(t, "Mat.Row", func() { sink += m.Row(1)[0] })
	assertZeroAllocs(t, "Mat.CopyFrom", func() { m.CopyFrom(src) })
	assertZeroAllocs(t, "Mat.AddFrom", func() { m.AddFrom(src) })
	assertZeroAllocs(t, "Mat.Zero", func() { m.Zero() })
	_ = sink
}

func TestTensor3AccessorsZeroAllocs(t *testing.T) {
	tr := NewTensor3(3, 4, 8)
	var sink float64
	assertZeroAllocs(t, "Tensor3.At", func() { sink += tr.At(1, 2, 3) })
	assertZeroAllocs(t, "Tensor3.Set", func() { tr.Set(1, 2, 3, 2.5) })
	assertZeroAllocs(t, "Tensor3.SBSRow", func() { sink += tr.SBSRow(2).At(0, 0) })
	_ = sink
}

func TestCachingPolicyZeroAllocs(t *testing.T) {
	in := testInstance()
	p := NewCachingPolicy(in)
	row := make([]bool, in.F)
	row[0], row[2] = true, true
	var sink bool
	assertZeroAllocs(t, "CachingPolicy.Get", func() { sink = p.Get(1, 2) })
	assertZeroAllocs(t, "CachingPolicy.Set", func() { p.Set(1, 2, true) })
	assertZeroAllocs(t, "CachingPolicy.SetRow", func() { p.SetRow(0, row) })
	_ = sink
}

func TestRoutingPolicyZeroAllocs(t *testing.T) {
	in := testInstance()
	p := NewRoutingPolicy(in)
	block := NewMat(in.U, in.F)
	block.Set(0, 0, 0.5)
	dst := NewMat(in.U, in.F)
	var sink float64
	assertZeroAllocs(t, "RoutingPolicy.At", func() { sink += p.At(1, 2, 3) })
	assertZeroAllocs(t, "RoutingPolicy.Set", func() { p.Set(1, 2, 3, 0.25) })
	assertZeroAllocs(t, "RoutingPolicy.SetSBS", func() { p.SetSBS(0, block) })
	assertZeroAllocs(t, "RoutingPolicy.SBS", func() { sink += p.SBS(1).At(0, 0) })
	assertZeroAllocs(t, "RoutingPolicy.Load", func() { sink += p.Load(in, 0) })
	assertZeroAllocs(t, "RoutingPolicy.AggregateInto", func() { p.AggregateInto(in, dst) })
	assertZeroAllocs(t, "RoutingPolicy.AggregateExceptInto", func() { p.AggregateExceptInto(in, 0, dst) })
	_ = sink
}

func TestAggregateTrackerZeroAllocs(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	y.Set(0, 0, 0, 0.5)
	y.Set(1, 1, 2, 0.25)
	tr := NewAggregateTracker(in)
	tr.Reset(in, y)
	yMinus := NewMat(in.U, in.F)
	upload := NewMat(in.U, in.F)
	upload.Set(0, 1, 0.125)
	var sink float64
	assertZeroAllocs(t, "AggregateTracker.Aggregate", func() { sink += tr.Aggregate().At(0, 0) })
	assertZeroAllocs(t, "AggregateTracker.YMinusInto", func() { tr.YMinusInto(in, y, 0, yMinus) })
	assertZeroAllocs(t, "AggregateTracker.Install", func() { tr.Install(in, y, 0, yMinus, upload) })
	_ = sink
}
