package lp

import (
	"math"
	"testing"
)

const tol = 1e-6

func requireOptimal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestSolveBasicMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{3, 5}
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Objective, 36) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !almostEqual(sol.X[0], 2) || !almostEqual(sol.X[1], 6) {
		t.Errorf("X = %v, want [2 6]", sol.X)
	}
}

func TestSolveBasicMin(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3 → x=7, y=3, obj=23.
	p := NewProblem(2)
	p.Obj = []float64{2, 3}
	p.AddConstraint([]float64{1, 1}, GE, 10)
	p.SetBounds(0, 2, math.Inf(1))
	p.SetBounds(1, 3, math.Inf(1))
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Objective, 23) {
		t.Errorf("objective = %v, want 23", sol.Objective)
	}
	if !almostEqual(sol.X[0], 7) || !almostEqual(sol.X[1], 3) {
		t.Errorf("X = %v, want [7 3]", sol.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 5, x ≤ 3 → x=3, y=2, obj=7.
	p := NewProblem(2)
	p.Obj = []float64{1, 2}
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.SetBounds(0, 0, 3)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Objective, 7) {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
}

func TestSolveUpperBounds(t *testing.T) {
	// max x + y with x ≤ 2, y ≤ 3 via bounds only.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 1}
	p.SetBounds(0, 0, 2)
	p.SetBounds(1, 0, 3)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Objective, 5) {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
}

func TestSolveFreeVariable(t *testing.T) {
	// min x s.t. x ≥ -7 with x free → x = -7.
	p := NewProblem(1)
	p.Obj = []float64{1}
	p.SetBounds(0, math.Inf(-1), math.Inf(1))
	p.AddConstraint([]float64{1}, GE, -7)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.X[0], -7) {
		t.Errorf("X = %v, want [-7]", sol.X)
	}
}

func TestSolveNegativeLowerBound(t *testing.T) {
	// min x + y, x ∈ [-5, 5], y ∈ [-2, 2], x + y ≥ -4 → obj = -4.
	p := NewProblem(2)
	p.Obj = []float64{1, 1}
	p.SetBounds(0, -5, 5)
	p.SetBounds(1, -2, 2)
	p.AddConstraint([]float64{1, 1}, GE, -4)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Objective, -4) {
		t.Errorf("objective = %v, want -4", sol.Objective)
	}
}

func TestSolveMirroredVariable(t *testing.T) {
	// min -x with x ∈ (-inf, 9] → x = 9, obj = -9.
	p := NewProblem(1)
	p.Obj = []float64{-1}
	p.SetBounds(0, math.Inf(-1), 9)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.X[0], 9) {
		t.Errorf("X = %v, want [9]", sol.X)
	}
	if !almostEqual(sol.Objective, -9) {
		t.Errorf("objective = %v, want -9", sol.Objective)
	}
}

func TestSolveFixedVariable(t *testing.T) {
	// x pinned to [2,2]; min x + y s.t. x + y ≥ 5 → y = 3.
	p := NewProblem(2)
	p.Obj = []float64{1, 1}
	p.SetBounds(0, 2, 2)
	p.AddConstraint([]float64{1, 1}, GE, 5)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.X[0], 2) || !almostEqual(sol.X[1], 3) {
		t.Errorf("X = %v, want [2 3]", sol.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Obj = []float64{1}
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]float64{-1}, LE, 0) // x ≥ 0, no upper limit
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveUnboundedNoConstraints(t *testing.T) {
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveNoConstraintsAtLowerBound(t *testing.T) {
	p := NewProblem(2)
	p.Obj = []float64{1, 2}
	sol := requireOptimal(t, p)
	if sol.X[0] != 0 || sol.X[1] != 0 {
		t.Errorf("X = %v, want [0 0]", sol.X)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Beale's classic cycling example (degenerate); Bland fallback must
	// terminate with the optimum -0.05.
	p := NewProblem(4)
	p.Obj = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Objective, -0.05) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x ≤ -3 (i.e. x ≥ 3).
	p := NewProblem(1)
	p.Obj = []float64{1}
	p.AddConstraint([]float64{-1}, LE, -3)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.X[0], 3) {
		t.Errorf("X = %v, want [3]", sol.X)
	}
}

func TestSolveRedundantConstraints(t *testing.T) {
	// Duplicated equality rows leave a redundant artificial basic at zero.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 1}
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{2, 2}, EQ, 8)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Objective, 4) {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestSolveValidationErrors(t *testing.T) {
	cases := []*Problem{
		nil,
		{NumVars: 0},
		{NumVars: 2, Obj: []float64{1}},
		{NumVars: 1, Obj: []float64{1}, Lower: []float64{0, 0}},
		{NumVars: 1, Obj: []float64{1}, Upper: []float64{0, 0}},
		{NumVars: 1, Obj: []float64{1}, Integer: []bool{true, true}},
		{NumVars: 1, Obj: []float64{1}, Cons: []Constraint{{Coef: []float64{1, 2}, Rel: LE, RHS: 1}}},
		{NumVars: 1, Obj: []float64{1}, Cons: []Constraint{{Coef: []float64{math.NaN()}, Rel: LE, RHS: 1}}},
		{NumVars: 1, Obj: []float64{1}, Cons: []Constraint{{Coef: []float64{1}, Rel: LE, RHS: math.NaN()}}},
		{NumVars: 1, Obj: []float64{math.Inf(1)}},
		{NumVars: 1, Obj: []float64{1}, Lower: []float64{5}, Upper: []float64{1}},
	}
	for i, p := range cases {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: Solve accepted invalid problem", i)
		}
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Rel.String() mismatch")
	}
	if Rel(9).String() != "Rel(9)" {
		t.Error("unknown Rel should format numerically")
	}
}

func TestStatusString(t *testing.T) {
	want := map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
	if Status(42).String() != "Status(42)" {
		t.Error("unknown Status should format numerically")
	}
}

// TestSolveTransportation exercises a larger structured LP: a 3x4
// transportation problem with known optimum.
func TestSolveTransportation(t *testing.T) {
	// Supplies 20/30/25, demands 10/25/15/25 (total 75 = total supply).
	supply := []float64{20, 30, 25}
	demand := []float64{10, 25, 15, 25}
	cost := [][]float64{
		{4, 6, 8, 8},
		{6, 8, 6, 7},
		{5, 7, 6, 8},
	}
	nv := len(supply) * len(demand)
	p := NewProblem(nv)
	idx := func(i, j int) int { return i*len(demand) + j }
	for i := range supply {
		for j := range demand {
			p.Obj[idx(i, j)] = cost[i][j]
		}
	}
	for i, s := range supply {
		coef := make([]float64, nv)
		for j := range demand {
			coef[idx(i, j)] = 1
		}
		p.AddConstraint(coef, EQ, s)
	}
	for j, d := range demand {
		coef := make([]float64, nv)
		for i := range supply {
			coef[idx(i, j)] = 1
		}
		p.AddConstraint(coef, EQ, d)
	}
	sol := requireOptimal(t, p)
	// Verify feasibility of the returned plan.
	for i, s := range supply {
		var sum float64
		for j := range demand {
			sum += sol.X[idx(i, j)]
		}
		if !almostEqual(sum, s) {
			t.Errorf("supply row %d ships %v, want %v", i, sum, s)
		}
	}
	for j, d := range demand {
		var sum float64
		for i := range supply {
			sum += sol.X[idx(i, j)]
		}
		if !almostEqual(sum, d) {
			t.Errorf("demand col %d receives %v, want %v", j, sum, d)
		}
	}
	// Optimum computed independently by Vogel's approximation plus a
	// stepping-stone optimality check (all reduced costs ≥ 0): 470.
	if !almostEqual(sol.Objective, 470) {
		t.Errorf("objective = %v, want 470", sol.Objective)
	}
}
