// Quickstart: build a small edge network by hand, run the distributed
// caching-and-routing algorithm (Algorithm 1 of the paper), and print the
// resulting policies — everything a first-time user needs to see the
// library working.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"edgecache/internal/core"
	"edgecache/internal/model"
)

func main() {
	// A hand-sized network: 2 SBSs, 3 MU locations, 4 contents.
	// MU 0 is covered by both SBSs, MU 1 only by SBS 0, MU 2 only by SBS 1.
	inst := &model.Instance{
		N: 2, U: 3, F: 4,
		// Demand[u][f]: requests per serving window.
		Demand: [][]float64{
			{30, 10, 0, 5},
			{0, 20, 15, 0},
			{10, 0, 0, 25},
		},
		Links: [][]bool{
			{true, true, false},
			{true, false, true},
		},
		CacheCap:  []int{2, 2},       // each SBS stores 2 of the 4 contents
		Bandwidth: []float64{40, 45}, // serving capacity per window
		EdgeCost: [][]float64{ // d_nu: cheap edge transmission
			{1, 1.5, 0},
			{1.2, 0, 1},
		},
		BSCost: []float64{100, 120, 110}, // d̂_u: expensive backhaul
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("worst case (everything over the backhaul): %.0f\n", inst.MaxCost())
	fmt.Printf("Algorithm 1: %s after %d sweeps (converged=%v)\n\n",
		res.Solution, res.Sweeps, res.Converged)

	for n := 0; n < inst.N; n++ {
		fmt.Printf("SBS %d caches contents %v and serves:\n", n, res.Solution.Caching.Contents(n))
		for u := 0; u < inst.U; u++ {
			for f := 0; f < inst.F; f++ {
				if y := res.Solution.Routing.At(n, u, f); y > 1e-9 {
					fmt.Printf("  %5.1f%% of MU %d's demand for content %d\n", 100*y, u, f)
				}
			}
		}
	}
	fmt.Printf("\nedge-served fraction of all demand: %.1f%%\n",
		100*model.ServedFraction(inst, res.Solution.Routing))
}
