package sim

import (
	"context"
	"fmt"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/transport"
)

// RunInmem wires one BS agent and N SBS agents over an in-memory hub, runs
// the protocol to convergence and returns the result. It is the one-call
// distributed deployment used by examples, benchmarks and tests.
//
// privacyFor, when non-nil, supplies the per-SBS privacy configuration
// (each SBS must own its noise source; sharing one *rand.Rand across agents
// would race).
func RunInmem(ctx context.Context, inst *model.Instance, cfg BSConfig, sub core.SubproblemConfig,
	privacyFor func(n int) *core.PrivacyConfig) (*core.RunResult, error) {
	res, _, err := RunInmemWithStats(ctx, inst, cfg, sub, privacyFor)
	return res, err
}

// RunInmemWithStats is RunInmem plus the BS-side traffic counters — how
// many protocol messages and payload bytes crossed the (simulated)
// network, which is the surface LPPM protects.
func RunInmemWithStats(ctx context.Context, inst *model.Instance, cfg BSConfig, sub core.SubproblemConfig,
	privacyFor func(n int) *core.PrivacyConfig) (*core.RunResult, transport.Stats, error) {
	if err := inst.Validate(); err != nil {
		return nil, transport.Stats{}, err
	}
	hub := transport.NewHub()
	const bsName = "bs"
	rawBsEp, err := hub.Register(bsName, 4*inst.N+4)
	if err != nil {
		return nil, transport.Stats{}, err
	}
	// The reliability layer (send retries + sequence-number dedup) is on by
	// default: with no faults it is invisible — the equivalence tests assert
	// the run stays bit-for-bit identical to core.Coordinator.
	relBsEp, err := transport.NewReliableEndpoint(rawBsEp, transport.RetryPolicy{})
	if err != nil {
		return nil, transport.Stats{}, err
	}
	bsEp := transport.NewCountingEndpoint(relBsEp)
	defer bsEp.Close()

	sbsNames := make([]string, inst.N)
	agents := make([]*SBSAgent, inst.N)
	for n := 0; n < inst.N; n++ {
		sbsNames[n] = fmt.Sprintf("sbs-%d", n)
		ep, err := hub.Register(sbsNames[n], 8)
		if err != nil {
			return nil, transport.Stats{}, err
		}
		defer ep.Close()
		relEp, err := transport.NewReliableEndpoint(ep, transport.RetryPolicy{Seed: int64(n) + 1})
		if err != nil {
			return nil, transport.Stats{}, err
		}
		var privacy *core.PrivacyConfig
		if privacyFor != nil {
			privacy = privacyFor(n)
		}
		agent, err := NewSBSAgent(inst, n, sub, privacy, relEp, bsName)
		if err != nil {
			return nil, transport.Stats{}, err
		}
		agents[n] = agent
	}

	bs, err := NewBSAgent(inst, cfg, bsEp, sbsNames)
	if err != nil {
		return nil, transport.Stats{}, err
	}

	agentCtx, cancelAgents := context.WithCancel(ctx)
	defer cancelAgents()
	errCh := make(chan error, inst.N)
	for _, agent := range agents {
		agent := agent
		go func() { errCh <- agent.Run(agentCtx) }()
	}

	res, runErr := bs.Run(ctx)
	cancelAgents()
	// Drain agent exits so no goroutine outlives the call.
	for range agents {
		select {
		case <-errCh:
		case <-time.After(5 * time.Second):
			return nil, transport.Stats{}, fmt.Errorf("sim: SBS agent failed to stop")
		}
	}
	return res, bsEp.Stats(), runErr
}
