package soak

import (
	"reflect"
	"testing"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// contains reports whether items includes every value in want, in order
// (the ddmin preconditions: subsets preserve relative order).
func contains(items []int, want ...int) bool {
	at := 0
	for _, v := range items {
		if at < len(want) && v == want[at] {
			at++
		}
	}
	return at == len(want)
}

func TestDdminSingleCulprit(t *testing.T) {
	got := ddmin(ints(20), func(s []int) bool { return contains(s, 13) })
	if !reflect.DeepEqual(got, []int{13}) {
		t.Errorf("ddmin = %v, want [13]", got)
	}
}

func TestDdminInteractingPair(t *testing.T) {
	// The failure needs both 3 and 17 — they live in different halves, so
	// no single chunk reproduces it and ddmin must refine granularity.
	got := ddmin(ints(20), func(s []int) bool { return contains(s, 3, 17) })
	if !reflect.DeepEqual(got, []int{3, 17}) {
		t.Errorf("ddmin = %v, want [3 17]", got)
	}
}

func TestDdminPreservesOrder(t *testing.T) {
	got := ddmin(ints(32), func(s []int) bool { return contains(s, 5, 6, 7) })
	if !reflect.DeepEqual(got, []int{5, 6, 7}) {
		t.Errorf("ddmin = %v, want [5 6 7]", got)
	}
}

func TestDdminNothingToRemove(t *testing.T) {
	// Every element is necessary: no proper subset is interesting, so the
	// input comes back whole.
	full := ints(4)
	got := ddmin(full, func(s []int) bool { return len(s) == len(full) })
	if !reflect.DeepEqual(got, full) {
		t.Errorf("ddmin = %v, want %v", got, full)
	}
}

func TestDdminBudgetExhaustedKeepsLastInteresting(t *testing.T) {
	// A caller out of budget answers false to everything; the result is
	// the smallest subset proven interesting so far — here the original.
	calls := 0
	got := ddmin(ints(16), func(s []int) bool {
		calls++
		return calls <= 2 && contains(s, 13) // budget dries up mid-search
	})
	if !contains(got, 13) {
		t.Errorf("ddmin = %v, lost the culprit 13 after budget exhaustion", got)
	}
}

func TestDdminTinyInputs(t *testing.T) {
	if got := ddmin([]int{}, func([]int) bool { return true }); len(got) != 0 {
		t.Errorf("ddmin(empty) = %v", got)
	}
	if got := ddmin([]int{7}, func([]int) bool { return true }); !reflect.DeepEqual(got, []int{7}) {
		t.Errorf("ddmin(single) = %v", got)
	}
}
