package sim

import (
	"fmt"
	"math/rand"

	"edgecache/internal/model"
	"edgecache/internal/trace"
)

// ValidationReport compares the fluid-model cost of a policy against a
// packet-level replay of the actual request process.
//
// The optimization model treats demand as fluid: y_nuf is the *fraction*
// of MU u's rate for content f served by SBS n, and bandwidth is a rate
// budget. A real system serves discrete requests arriving as a point
// process; ValidatePolicy replays such a stream, dispatches each request
// to an SBS with probability equal to its routing share (falling back to
// the BS when the chosen SBS has exhausted its bandwidth for the window),
// and accounts the realized cost. Agreement between the two quantifies
// how faithful the fluid relaxation is at the paper's operating scale.
type ValidationReport struct {
	// ModelCost is f(y) evaluated analytically on the policy.
	ModelCost model.CostBreakdown
	// RealizedCost is the cost measured during the replay.
	RealizedCost model.CostBreakdown
	// RelativeError is |realized − model| / model (total cost).
	RelativeError float64
	// Requests is the number of replayed requests; EdgeServed of them
	// were served by an SBS; Fallbacks were routed to an SBS that had no
	// bandwidth left and spilled to the BS.
	Requests, EdgeServed, Fallbacks int
}

// ValidateOptions tunes the replay.
type ValidateOptions struct {
	// Requests is the approximate stream length (the demand matrix is
	// scaled to this mass before Poisson expansion). 0 means 20000.
	Requests int
	// Seed drives stream expansion and probabilistic dispatch.
	Seed int64
}

// ValidatePolicy replays a synthetic request stream against a solved
// policy and reports fluid-vs-packet agreement.
func ValidatePolicy(inst *model.Instance, sol *model.Solution, opts ValidateOptions) (*ValidationReport, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if sol == nil || sol.Routing == nil {
		return nil, fmt.Errorf("sim: ValidatePolicy requires a solution with routing")
	}
	if opts.Requests <= 0 {
		opts.Requests = 20000
	}

	total := inst.TotalDemand()
	report := &ValidationReport{ModelCost: model.TotalServingCost(inst, sol.Routing)}
	if total <= 0 {
		report.RealizedCost = report.ModelCost
		return report, nil
	}
	scale := float64(opts.Requests) / total
	scaled := make([][]float64, inst.U)
	for u := range scaled {
		scaled[u] = make([]float64, inst.F)
		for f := range scaled[u] {
			scaled[u][f] = inst.Demand[u][f] * scale
		}
	}
	stream, err := trace.Stream(scaled, 1, opts.Seed)
	if err != nil {
		return nil, err
	}
	if len(stream) == 0 {
		report.RealizedCost = model.CostBreakdown{}
		report.RelativeError = relErr(0, report.ModelCost.Total)
		return report, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed + 1))
	unit := 1 / scale // demand units represented by one request
	bandwidthLeft := make([]float64, inst.N)
	for n := range bandwidthLeft {
		bandwidthLeft[n] = inst.Bandwidth[n]
	}

	var cost model.CostBreakdown
	for _, req := range stream {
		report.Requests++
		// Dispatch by routing shares: SBS n gets the request with
		// probability y_nuf (shares sum to ≤ 1; the remainder is BS).
		u := rng.Float64()
		served := false
		for n := 0; n < inst.N; n++ {
			if !inst.Links[n][req.Group] {
				continue
			}
			share := sol.Routing.At(n, req.Group, req.Content)
			if share <= 0 {
				continue
			}
			if u < share {
				if bandwidthLeft[n] >= unit {
					bandwidthLeft[n] -= unit
					cost.Edge += inst.EdgeCost[n][req.Group] * unit
					report.EdgeServed++
				} else {
					cost.Backhaul += inst.BSCost[req.Group] * unit
					report.Fallbacks++
				}
				served = true
				break
			}
			u -= share
		}
		if !served {
			cost.Backhaul += inst.BSCost[req.Group] * unit
		}
	}
	// Normalize the realized cost to the exact demand mass (the Poisson
	// expansion realizes slightly more or less than `total`).
	factor := total / (float64(len(stream)) * unit)
	cost.Edge *= factor
	cost.Backhaul *= factor
	cost.Total = cost.Edge + cost.Backhaul

	report.RealizedCost = cost
	report.RelativeError = relErr(cost.Total, report.ModelCost.Total)
	return report, nil
}

func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}
