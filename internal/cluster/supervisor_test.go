package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edgecache/internal/chaos"
	"edgecache/internal/core"
	"edgecache/internal/leak"
	"edgecache/internal/model"
)

// TestMain doubles as the agent binary: the supervisor under test launches
// this same test executable with "-role ..." as the first argument, and
// the hook below routes such invocations into AgentMain before the testing
// package ever parses flags.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-role" {
		if err := AgentMain(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "agent:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testInstance builds a small deterministic instance with the given SBS
// count. Bandwidth is kept tight so the cells stay coupled and need
// several Gauss-Seidel sweeps — mid-run faults have a window to fire in
// (the experiments scenario's looser instances hit a fixed point in two
// sweeps, before any scheduled fault could trigger).
func testInstance(t *testing.T, sbss int, seed int64) *model.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const u, f = 5, 6
	inst := &model.Instance{
		N: sbss, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, sbss),
		CacheCap:  make([]int, sbss),
		Bandwidth: make([]float64, sbss),
		EdgeCost:  make([][]float64, sbss),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < sbss; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1 + rng.Float64()*3
		}
		inst.CacheCap[i] = 1 + rng.Intn(f/2+1)
		inst.Bandwidth[i] = 5 + rng.Float64()*40
	}
	return inst
}

// referenceRun computes the in-process trajectory the cluster must match
// bit-for-bit on the fault-free path. Gamma and MaxSweeps mirror the
// cluster spec exactly so the trajectories are comparable.
func referenceRun(t *testing.T, inst *model.Instance, spec model.ClusterSpec) *core.RunResult {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Gamma = spec.Gamma
	cfg.MaxSweeps = spec.MaxSweeps
	coord, err := core.NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// testSpec builds a cluster spec with fast test timings and a Gamma tight
// enough that runs use their whole sweep budget — the small test instances
// otherwise converge in two sweeps, before any mid-run fault can fire.
func testSpec(cells, sbss, maxSweeps int) model.ClusterSpec {
	spec := model.ClusterSpec{
		Gamma:     1e-12,
		MaxSweeps: maxSweeps,
		// Generous timeouts by default: under -race on a loaded box a
		// hundred instrumented processes start slowly, and false liveness
		// kills would make the fault-free assertions flaky. Tests that
		// exercise the deadline machinery override these.
		PhaseTimeoutMS:  8000,
		HeartbeatMS:     20,
		HeartbeatMisses: 250, // 5s liveness deadline (10s with two-strike)
	}
	for i := 0; i < cells; i++ {
		spec.Cells = append(spec.Cells, model.ClusterCell{
			Name: fmt.Sprintf("cell-%d", i),
			SBSs: sbss,
			Seed: int64(100 + i),
		})
	}
	return spec
}

// runSupervised builds the instances, runs a supervised cluster in a fresh
// run dir and returns the result (and the run error for the caller to
// judge). The supervisor log is attached to the test log on failure.
func runSupervised(t *testing.T, spec model.ClusterSpec, procs chaos.ProcSchedule,
	timeout time.Duration) ([]*model.Instance, *Result, error) {
	t.Helper()
	// Every supervised run must unwind completely: heartbeat listeners,
	// per-cell waiters, chaos timers. The guard fails the test with a
	// stack dump if any survive the run.
	leak.Check(t)
	insts := make([]*model.Instance, len(spec.Cells))
	for i, c := range spec.Cells {
		insts[i] = testInstance(t, c.SBSs, c.Seed)
	}
	var logBuf bytes.Buffer
	sup, err := NewSupervisor(Config{
		Spec:      spec,
		Instances: insts,
		Command:   []string{os.Args[0]},
		RunDir:    t.TempDir(),
		Proc:      procs,
		Log:       &logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, runErr := sup.Run(ctx)
	runDir := sup.cfg.RunDir
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("supervisor log:\n%s", logBuf.String())
			logs, _ := filepath.Glob(filepath.Join(runDir, "*", "*.log"))
			for _, lf := range logs {
				if data, err := os.ReadFile(lf); err == nil && len(data) > 0 {
					t.Logf("agent log %s:\n%s", lf, data)
				}
			}
		}
	})
	if ctx.Err() != nil {
		t.Fatalf("cluster run hit the %v test timeout: %v\nlog:\n%s", timeout, runErr, logBuf.String())
	}
	return insts, res, runErr
}

// assertBitIdentical compares one cell's collected trajectory against the
// in-process reference with exact float64 equality (JSON round-trips Go
// floats exactly, so this is a true bit-identity check).
func assertBitIdentical(t *testing.T, cell CellResult, ref *core.RunResult) {
	t.Helper()
	if !cell.Completed || cell.Result == nil {
		t.Fatalf("cell %s did not complete: %s", cell.Name, cell.Failure)
	}
	got := cell.Result
	if got.CostTotal != ref.Solution.Cost.Total {
		t.Errorf("cell %s: cost %v, reference %v", cell.Name, got.CostTotal, ref.Solution.Cost.Total)
	}
	if got.Converged != ref.Converged || got.Sweeps != ref.Sweeps {
		t.Errorf("cell %s: converged=%v sweeps=%d, reference converged=%v sweeps=%d",
			cell.Name, got.Converged, got.Sweeps, ref.Converged, ref.Sweeps)
	}
	if len(got.History) != len(ref.History) {
		t.Fatalf("cell %s: history has %d sweeps, reference %d", cell.Name, len(got.History), len(ref.History))
	}
	for i := range got.History {
		if got.History[i] != ref.History[i] {
			t.Errorf("cell %s: history[%d] = %v, reference %v", cell.Name, i, got.History[i], ref.History[i])
		}
	}
}

// TestClusterFaultFree10x10BitIdentical is the ROADMAP acceptance: a
// 10-cell × 10-SBS cluster of real OS processes over TCP converges, and
// every cell's trajectory is bit-for-bit the in-process coordinator's.
func TestClusterFaultFree10x10BitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("110 OS processes; skipped in -short")
	}
	spec := testSpec(10, 10, 6)
	insts, res, err := runSupervised(t, spec, chaos.ProcSchedule{}, 3*time.Minute)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	for i, cell := range res.Cells {
		assertBitIdentical(t, cell, referenceRun(t, insts[i], spec))
		if cell.BSRestarts != 0 || cell.SBSRestarts != 0 {
			t.Errorf("cell %s consumed restarts on the fault-free path (bs=%d sbs=%d)",
				cell.Name, cell.BSRestarts, cell.SBSRestarts)
		}
		if cell.Result.Misses != 0 {
			t.Errorf("cell %s: %d misses on the fault-free path", cell.Name, cell.Result.Misses)
		}
	}
}

// TestClusterBSKillResumes is the other half of the acceptance: a
// chaos-scheduled SIGKILL of one cell's BS mid-sweep; the supervisor must
// restart it from its newest checkpoint and the whole run must still
// converge — with the killed cell's trajectory still bit-identical to the
// reference (PR 4's resume guarantee, now across real process death).
func TestClusterBSKillResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped in -short")
	}
	spec := testSpec(3, 3, 8)
	spec.Cells[1].Seed = 28 // a 3-sweep instance: the kill lands mid-run
	procs := chaos.ProcSchedule{Events: []chaos.ProcEvent{
		{Cell: "cell-1", SBS: -1, Op: chaos.ProcKill, Sweep: 1},
	}}
	insts, res, err := runSupervised(t, spec, procs, 2*time.Minute)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	if len(res.Fired) != 1 || res.Fired[0].Event.Op != chaos.ProcKill {
		t.Fatalf("fired = %+v, want the one scheduled kill", res.Fired)
	}
	if len(res.Unfired) != 0 {
		t.Errorf("unfired = %+v, want none", res.Unfired)
	}
	for i, cell := range res.Cells {
		assertBitIdentical(t, cell, referenceRun(t, insts[i], spec))
	}
	if got := res.Cells[1].BSRestarts; got < 1 {
		t.Errorf("cell-1 BS restarts = %d, want >= 1 (it was SIGKILLed)", got)
	}
	if got := res.Cells[0].BSRestarts + res.Cells[2].BSRestarts; got != 0 {
		t.Errorf("unkilled cells consumed %d BS restarts", got)
	}
}

// TestClusterSBSKillRestarts kills one SBS process mid-run; the supervisor
// restarts it and the cell still completes (the BS's miss machinery covers
// the gap, so only convergence — not bit-identity — is asserted).
func TestClusterSBSKillRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped in -short")
	}
	spec := testSpec(1, 3, 10)
	spec.Cells[0].Seed = 28
	spec.PhaseTimeoutMS = 500
	procs := chaos.ProcSchedule{Events: []chaos.ProcEvent{
		{Cell: "cell-0", SBS: 1, Op: chaos.ProcKill, Sweep: 1},
	}}
	_, res, err := runSupervised(t, spec, procs, 2*time.Minute)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	cell := res.Cells[0]
	if !cell.Completed {
		t.Fatalf("cell did not complete: %s", cell.Failure)
	}
	if cell.SBSRestarts < 1 {
		t.Errorf("SBS restarts = %d, want >= 1", cell.SBSRestarts)
	}
	if len(cell.Escalated) != 0 {
		t.Errorf("escalated = %v, want none (budget not exhausted)", cell.Escalated)
	}
}

// TestClusterSBSEscalationDegradesGracefully exhausts an SBS's restart
// budget (RestartBudget = -1 means zero restarts): the SBS is left
// permanently down, the BS quarantines it and the cell still completes —
// the paper's graceful-degradation story at the process level.
func TestClusterSBSEscalationDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped in -short")
	}
	spec := testSpec(1, 3, 12)
	spec.Cells[0].Seed = 28
	spec.RestartBudget = -1
	spec.PhaseTimeoutMS = 400
	procs := chaos.ProcSchedule{Events: []chaos.ProcEvent{
		{Cell: "cell-0", SBS: 2, Op: chaos.ProcKill, Sweep: 1},
	}}
	_, res, err := runSupervised(t, spec, procs, 2*time.Minute)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	cell := res.Cells[0]
	if !cell.Completed {
		t.Fatalf("cell did not complete: %s", cell.Failure)
	}
	if len(cell.Escalated) != 1 || cell.Escalated[0] != "sbs-2" {
		t.Errorf("escalated = %v, want [sbs-2]", cell.Escalated)
	}
	if cell.Result.Quarantines < 1 {
		t.Errorf("quarantines = %d, want >= 1 (the dead SBS must be quarantined)", cell.Result.Quarantines)
	}
}

// TestClusterBSEscalationFailsCellOnly exhausts a BS's restart budget: its
// cell fails and is torn down, the run reports the failure, and the other
// cell still completes — per-cell blast radius.
func TestClusterBSEscalationFailsCellOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped in -short")
	}
	spec := testSpec(2, 2, 8)
	spec.RestartBudget = -1
	procs := chaos.ProcSchedule{Events: []chaos.ProcEvent{
		{Cell: "cell-0", SBS: -1, Op: chaos.ProcKill, Sweep: 1},
	}}
	_, res, err := runSupervised(t, spec, procs, 2*time.Minute)
	if err == nil {
		t.Fatal("want a run error naming the failed cell")
	}
	if !strings.Contains(err.Error(), "cell-0") {
		t.Errorf("error %q does not name cell-0", err)
	}
	if res.Cells[0].Completed || res.Cells[0].Failure == "" {
		t.Errorf("cell-0 = %+v, want failed with a reason", res.Cells[0])
	}
	if !res.Cells[1].Completed {
		t.Errorf("cell-1 did not complete: %s", res.Cells[1].Failure)
	}
}

// TestClusterStopContFreeze freezes the BS with SIGSTOP for less than the
// heartbeat deadline: the scheduled SIGCONT resumes it and the run
// completes without consuming any restart.
func TestClusterStopContFreeze(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped in -short")
	}
	spec := testSpec(1, 3, 8)
	procs := chaos.ProcSchedule{Events: []chaos.ProcEvent{
		{Cell: "cell-0", SBS: -1, Op: chaos.ProcStop, Sweep: 1, Delay: 200 * time.Millisecond},
	}}
	_, res, err := runSupervised(t, spec, procs, 2*time.Minute)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	cell := res.Cells[0]
	if !cell.Completed {
		t.Fatalf("cell did not complete: %s", cell.Failure)
	}
	if cell.BSRestarts != 0 {
		t.Errorf("BS restarts = %d, want 0 (a sub-deadline freeze is not a death)", cell.BSRestarts)
	}
	if len(res.Fired) != 1 || res.Fired[0].Event.Op != chaos.ProcStop {
		t.Errorf("fired = %+v, want the one stop", res.Fired)
	}
}

// TestClusterFreezeKillConsumesRestart freezes the BS for well past the
// liveness deadline: the supervisor must declare it dead (two strikes),
// SIGKILL it, and restart it from its checkpoint — a frozen process is a
// crashed process as far as the cell is concerned.
func TestClusterFreezeKillConsumesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped in -short")
	}
	spec := testSpec(1, 3, 8)
	spec.Cells[0].Seed = 28
	// The deadline must be short enough that the 8s freeze is declared a
	// death (4s two-strike kill), yet long enough that a restart storm on a
	// loaded single-core -race run cannot starve a healthy agent's 20ms
	// ticker past it.
	spec.HeartbeatMisses = 100 // 2s deadline, 4s with two-strike
	procs := chaos.ProcSchedule{Events: []chaos.ProcEvent{
		{Cell: "cell-0", SBS: -1, Op: chaos.ProcStop, Sweep: 1, Delay: 8 * time.Second},
	}}
	_, res, err := runSupervised(t, spec, procs, 2*time.Minute)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	cell := res.Cells[0]
	if !cell.Completed {
		t.Fatalf("cell did not complete: %s", cell.Failure)
	}
	if cell.BSRestarts < 1 {
		t.Errorf("BS restarts = %d, want >= 1 (the freeze outlived the deadline)", cell.BSRestarts)
	}
}

// TestClusterSpawnDelayLateJoin delays one SBS's launch: the cell starts
// without it, the BS misses its phases, and once the straggler reports its
// address reaches the BS incrementally and the run completes.
func TestClusterSpawnDelayLateJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped in -short")
	}
	spec := testSpec(1, 3, 14)
	spec.PhaseTimeoutMS = 300
	procs := chaos.ProcSchedule{Events: []chaos.ProcEvent{
		{Cell: "cell-0", SBS: 1, Op: chaos.ProcSpawnDelay, Delay: 400 * time.Millisecond},
	}}
	_, res, err := runSupervised(t, spec, procs, 2*time.Minute)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	cell := res.Cells[0]
	if !cell.Completed {
		t.Fatalf("cell did not complete: %s", cell.Failure)
	}
	if cell.Result.Misses == 0 {
		t.Log("late join was absorbed without a single miss (tight but possible)")
	}
}

// TestNewSupervisorValidation exercises the constructor's shape checks.
func TestNewSupervisorValidation(t *testing.T) {
	inst := testInstance(t, 2, 1)
	spec := testSpec(1, 2, 4)
	base := func() Config {
		return Config{
			Spec:      spec,
			Instances: []*model.Instance{inst},
			Command:   []string{os.Args[0]},
			RunDir:    t.TempDir(),
		}
	}
	if _, err := NewSupervisor(base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no command", func(c *Config) { c.Command = nil }},
		{"no run dir", func(c *Config) { c.RunDir = "" }},
		{"instance count", func(c *Config) { c.Instances = nil }},
		{"instance shape", func(c *Config) { c.Instances = []*model.Instance{testInstance(t, 3, 1)} }},
		{"unknown chaos cell", func(c *Config) {
			c.Proc = chaos.ProcSchedule{Events: []chaos.ProcEvent{{Cell: "nope", SBS: -1, Op: chaos.ProcKill, Sweep: 1}}}
		}},
		{"chaos SBS range", func(c *Config) {
			c.Proc = chaos.ProcSchedule{Events: []chaos.ProcEvent{{Cell: "cell-0", SBS: 7, Op: chaos.ProcKill, Sweep: 1}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := NewSupervisor(cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestParseLine covers the stdout protocol parser.
func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		kind string
		ok   bool
	}{
		{"ADDR 127.0.0.1:4242", lineAddr, true},
		{"HB 3 1", lineHB, true},
		{"HB -1 -1", lineHB, true},
		{"DONE", lineDone, true},
		{"", "", false},
		{"HB 3", "", false},
		{"HB x y", "", false},
		{"ADDR", "", false},
		{"garbage line", "", false},
	}
	for _, tc := range cases {
		kind, _, _, _, ok := parseLine(tc.line)
		if kind != tc.kind || ok != tc.ok {
			t.Errorf("parseLine(%q) = (%q, %v), want (%q, %v)", tc.line, kind, ok, tc.kind, tc.ok)
		}
	}
}

// TestResultFileRoundTrip covers the atomic result codec.
func TestResultFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "result.json")
	in := &AgentResult{Converged: true, Sweeps: 4, CostTotal: 123.0625, History: []float64{3, 2, 1.5, 1.25}, Misses: 2}
	if err := writeResultFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.CostTotal != in.CostTotal || out.Sweeps != in.Sweeps || !out.Converged ||
		len(out.History) != len(in.History) || out.Misses != 2 {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}
