package model

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	in := testInstance()
	s := in.Summarize()
	if s.SBSs != 2 || s.Groups != 3 || s.Contents != 4 {
		t.Errorf("dims = %d/%d/%d", s.SBSs, s.Groups, s.Contents)
	}
	if s.Links != 5 {
		t.Errorf("links = %d, want 5", s.Links)
	}
	if s.CoveredGroups != 3 {
		t.Errorf("covered = %d, want 3", s.CoveredGroups)
	}
	// Degrees: MU0→2, MU1→2, MU2→1 ⇒ mean 5/3.
	if math.Abs(s.MeanDegree-5.0/3.0) > 1e-12 {
		t.Errorf("mean degree = %v, want 5/3", s.MeanDegree)
	}
	if s.TotalDemand != 40 || s.ReachableDemand != 40 {
		t.Errorf("demand = %v/%v", s.TotalDemand, s.ReachableDemand)
	}
	// Content demands: f0=12, f1=7, f2=10, f3=11 ⇒ top share 12/40.
	if math.Abs(s.TopContentShare-0.3) > 1e-12 {
		t.Errorf("top share = %v, want 0.3", s.TopContentShare)
	}
	if s.TotalCacheSlots != 3 || s.TotalBandwidth != 30 {
		t.Errorf("resources = %d/%v", s.TotalCacheSlots, s.TotalBandwidth)
	}
	if math.Abs(s.BandwidthDemandRatio-0.75) > 1e-12 {
		t.Errorf("bw/demand = %v, want 0.75", s.BandwidthDemandRatio)
	}
	if s.MaxCost != 4320 {
		t.Errorf("MaxCost = %v", s.MaxCost)
	}
	out := s.String()
	for _, want := range []string{"2 SBSs", "5 links", "3/3 groups covered", "backhaul ceiling 4320"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeZeroDemand(t *testing.T) {
	in := testInstance()
	for u := range in.Demand {
		for f := range in.Demand[u] {
			in.Demand[u][f] = 0
		}
	}
	s := in.Summarize()
	if s.TopContentShare != 0 || s.BandwidthDemandRatio != 0 {
		t.Errorf("zero-demand ratios = %v/%v, want 0/0", s.TopContentShare, s.BandwidthDemandRatio)
	}
}

func TestDegreeHistogram(t *testing.T) {
	in := testInstance()
	hist := in.DegreeHistogram()
	// MU0: 2 links, MU1: 2 links, MU2: 1 link.
	want := []int{0, 1, 2}
	for d, w := range want {
		if hist[d] != w {
			t.Errorf("hist[%d] = %d, want %d (full: %v)", d, hist[d], w, hist)
		}
	}
	total := 0
	for _, h := range hist {
		total += h
	}
	if total != in.U {
		t.Errorf("histogram sums to %d, want U=%d", total, in.U)
	}
}

func TestPopularityRanking(t *testing.T) {
	in := testInstance()
	// Content demands: f0=12, f1=7, f2=10, f3=11.
	got := in.PopularityRanking()
	want := []int{0, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranking = %v, want %v", got, want)
		}
	}
}
