package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgecache/internal/lp"
)

// TestTheorem1CachingLPIsIntegral verifies the paper's Theorem 1 ("the
// optimal solution of caching subproblem after the relaxation is
// integral") directly: the caching sub-problem (eq. 18-19)
//
//	max Σ_f x_f·score_f   s.t.  Σ_f x_f ≤ C,  x ∈ [0,1]^F
//
// has a totally unimodular constraint matrix, so its LP relaxation —
// solved here by the repository's own simplex — must return a 0/1 vertex
// for every score vector, matching the greedy integral step the dual
// solver uses.
func TestTheorem1CachingLPIsIntegral(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := 3 + rng.Intn(8)
		capacity := 1 + rng.Intn(f)
		scores := make([]float64, f)
		for j := range scores {
			// Multiplier masses μ are non-negative; include exact ties to
			// stress degenerate vertices.
			scores[j] = math.Round(rng.Float64()*10) / 2
		}

		p := lp.NewProblem(f)
		p.Maximize = true
		copy(p.Obj, scores)
		coef := make([]float64, f)
		for j := range coef {
			p.SetBounds(j, 0, 1)
			coef[j] = 1
		}
		p.AddConstraint(coef, lp.LE, float64(capacity))
		sol, err := lp.Solve(p)
		if err != nil || sol.Status != lp.Optimal {
			return false
		}
		// Integrality of the relaxation (Theorem 1).
		for _, v := range sol.X {
			if math.Abs(v-math.Round(v)) > 1e-7 {
				t.Logf("seed %d: fractional vertex %v", seed, sol.X)
				return false
			}
		}
		// The greedy caching step must achieve the same objective.
		greedyObj := greedyCachingValue(scores, capacity)
		return math.Abs(greedyObj-sol.Objective) <= 1e-7*(1+math.Abs(sol.Objective))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// greedyCachingValue reimplements the eq. 18 greedy independently of the
// Subproblem plumbing: take the top-capacity positive scores.
func greedyCachingValue(scores []float64, capacity int) float64 {
	picked := append([]float64(nil), scores...)
	// selection sort is fine at test sizes
	var total float64
	for c := 0; c < capacity; c++ {
		best, idx := 0.0, -1
		for j, v := range picked {
			if v > best {
				best, idx = v, j
			}
		}
		if idx == -1 {
			break
		}
		total += best
		picked[idx] = 0
	}
	return total
}
