// Command edgesim runs one edge-caching scenario end-to-end and reports
// the serving cost, the convergence history and the privacy accounting.
//
// Usage:
//
//	edgesim                          # paper-default scenario, in-process
//	edgesim -epsilon 0.1 -delta 0.5  # with LPPM
//	edgesim -distributed             # BS + SBS agents over an in-memory bus
//	edgesim -groups 40 -links 60     # topology overrides
//	edgesim -compare                 # also run LRFU and no-cache baselines
//	edgesim -chaos "drop=0.3,crash=1@1+3"  # distributed run under faults
//	edgesim -engine jacobi           # reference Jacobi rounds instead of Gauss-Seidel
//	edgesim -engine parallel -workers 8    # goroutine-sharded Jacobi worker pool
//	edgesim -checkpoint-dir ckpt     # snapshot sweep state for crash recovery
//	edgesim -checkpoint-dir ckpt -resume   # continue from the newest snapshot
//	edgesim -cluster -cells cells.json     # multi-process cluster (supervisor mode)
//	edgesim -cluster -cells cells.json -proc-chaos "kill=cell-1@2"  # with process faults
//	edgesim -soak -soak-episodes 25 -soak-seed 1   # randomized chaos soak with fault minimization
//	edgesim -soak -soak-cluster 2          # append supervised multi-process soak episodes
//	edgesim -soak -soak-repro soak-repro-ep3-seed42.txt  # replay a minimized failing schedule
//	edgesim -cpuprofile cpu.pprof -memprofile mem.pprof -trace trace.out  # profile the run
//
// With -cluster the binary becomes a supervisor that re-executes itself as
// agent processes (`edgesim -role bs|sbs ...`, an internal sub-entrypoint).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"edgecache/internal/baseline"
	"edgecache/internal/chaos"
	"edgecache/internal/cluster"
	"edgecache/internal/core"
	"edgecache/internal/dp"
	"edgecache/internal/experiments"
	"edgecache/internal/model"
	"edgecache/internal/prof"
	"edgecache/internal/sim"
	"edgecache/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edgesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Agent sub-entrypoint: the cluster supervisor launches this same
	// binary with "-role bs|sbs" as the first argument; everything after
	// is agent flags. Checked before flag parsing so the agent flag set
	// stays private to the cluster package.
	if len(args) > 0 && args[0] == "-role" {
		return cluster.AgentMain(args)
	}
	fs := flag.NewFlagSet("edgesim", flag.ContinueOnError)
	var (
		sbss        = fs.Int("sbss", 3, "number of SBSs")
		groups      = fs.Int("groups", 30, "number of MU groups")
		links       = fs.Int("links", 40, "total MU-SBS links")
		videos      = fs.Int("videos", 50, "catalog size")
		cacheCap    = fs.Int("cache", 10, "cache capacity per SBS")
		bandwidth   = fs.Float64("bandwidth", 1000, "bandwidth per SBS")
		seed        = fs.Int64("seed", 1, "scenario seed")
		epsilon     = fs.Float64("epsilon", 0, "LPPM privacy budget ε (0 disables privacy)")
		delta       = fs.Float64("delta", 0.5, "LPPM Laplace component factor δ")
		distributed = fs.Bool("distributed", false, "run BS and SBS agents over a message bus")
		chaosSpec   = fs.String("chaos", "", "distributed run under a fault schedule, e.g. \"seed=7,drop=0.3,crash=1@1+3\"")
		phaseTO     = fs.Duration("phase-timeout", 0, "BS phase timeout for -chaos runs (default 2s)")
		compare     = fs.Bool("compare", false, "also run the LRFU and no-cache baselines")
		restarts    = fs.Int("restarts", 0, "extra shuffled-order restarts (extension)")
		engine      = fs.String("engine", "gs", "sweep engine: gs (sequential Gauss-Seidel), jacobi (reference round updates), parallel (goroutine-sharded Jacobi)")
		workers     = fs.Int("workers", 0, "worker-pool size for -engine parallel (0 means GOMAXPROCS)")
		jacobi      = fs.Bool("jacobi", false, "deprecated alias for -engine jacobi")
		regions     = fs.Int("regions", 1, "number of BS coordination regions (multi-BS extension)")
		saveInst    = fs.String("save-instance", "", "write the built instance as JSON and continue")
		loadInst    = fs.String("load-instance", "", "load the instance from JSON instead of building a scenario")
		saveSol     = fs.String("save-solution", "", "write the final solution as JSON")
		validate    = fs.Bool("validate", false, "packet-level replay of the solved policy (fluid-model check)")
		ckptDir     = fs.String("checkpoint-dir", "", "snapshot sweep state into this directory at every sweep boundary (in-process mode)")
		ckptRetain  = fs.Int("checkpoint-retain", 3, "how many snapshots -checkpoint-dir keeps (0 keeps all)")
		resume      = fs.Bool("resume", false, "continue from the newest snapshot in -checkpoint-dir instead of starting cold")
		clusterMode = fs.Bool("cluster", false, "supervise a multi-process cluster per the -cells spec")
		cellsPath   = fs.String("cells", "", "cluster spec JSON for -cluster")
		procChaos   = fs.String("proc-chaos", "", "process-fault schedule for -cluster, e.g. \"kill=cell-1@2,stop=cell-0.1@1+100ms\"")
		runDir      = fs.String("run-dir", "", "cluster run directory for -cluster (default: a fresh temp dir)")
		soakMode    = fs.Bool("soak", false, "run the randomized chaos soak harness instead of a scenario")
		soakEps     = fs.Int("soak-episodes", 10, "in-process soak episode count")
		soakSeed    = fs.Int64("soak-seed", 1, "soak base seed (derives every episode's schedule)")
		soakCluster = fs.Int("soak-cluster", 0, "supervised multi-process soak episodes to append")
		soakDisk    = fs.Bool("soak-disk", true, "run the per-episode disk fault-injection drill")
		soakRepro   = fs.String("soak-repro", "", "replay a minimized soak repro file instead of soaking")
		soakDir     = fs.String("soak-repro-dir", ".", "directory for minimized repro files on soak failure")
		cpuProf     = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf     = fs.String("memprofile", "", "write a pprof heap profile (post-GC live set) to this file at exit")
		traceOut    = fs.String("trace", "", "write a runtime execution trace of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := prof.Start(*cpuProf, *memProf, *traceOut)
	if err != nil {
		return err
	}
	defer sess.Stop()
	if *clusterMode {
		if err := runCluster(*cellsPath, *procChaos, *runDir); err != nil {
			return err
		}
		return sess.Stop()
	}
	if *cellsPath != "" || *procChaos != "" || *runDir != "" {
		return fmt.Errorf("-cells, -proc-chaos and -run-dir require -cluster")
	}
	if *soakMode || *soakRepro != "" {
		if err := runSoak(*soakEps, *soakSeed, *soakCluster, *soakDisk, *soakDir, *soakRepro); err != nil {
			return err
		}
		return sess.Stop()
	}
	engineKind, err := model.ParseEngineKind(*engine)
	if err != nil {
		return err
	}
	if *jacobi {
		if engineKind != model.EngineGaussSeidel && engineKind != model.EngineJacobi {
			return fmt.Errorf("-jacobi conflicts with -engine %v", engineKind)
		}
		engineKind = model.EngineJacobi
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		// Checkpointing covers the in-process coordinator (any engine, at
		// sweep boundaries); the chaos runner manages its own store for
		// bscrash recovery, and the remaining modes have no resume path.
		switch {
		case *chaosSpec != "":
			return fmt.Errorf("-checkpoint-dir is not supported with -chaos (bscrash schedules auto-install an in-memory store)")
		case *distributed:
			return fmt.Errorf("-checkpoint-dir is not supported with -distributed")
		case *regions > 1:
			return fmt.Errorf("-checkpoint-dir is not supported with -regions")
		case *restarts > 0:
			return fmt.Errorf("-checkpoint-dir is not supported with -restarts")
		}
	}

	var inst *model.Instance
	if *loadInst != "" {
		f, err := os.Open(*loadInst)
		if err != nil {
			return err
		}
		inst, err = model.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		sc := experiments.DefaultScenario()
		sc.SBSs = *sbss
		sc.Groups = *groups
		sc.LinkCount = *links
		sc.Videos = *videos
		sc.CachePerSBS = *cacheCap
		sc.Bandwidth = *bandwidth
		sc.Seed = *seed
		var err error
		inst, err = sc.Build()
		if err != nil {
			return err
		}
	}
	if *saveInst != "" {
		f, err := os.Create(*saveInst)
		if err != nil {
			return err
		}
		if err := inst.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote instance to %s\n", *saveInst)
	}
	fmt.Printf("scenario: %s\n\n", inst.Summarize())

	var acct dp.Accountant
	privacy := func(n int) *core.PrivacyConfig {
		if *epsilon <= 0 {
			return nil
		}
		return &core.PrivacyConfig{
			Epsilon:    *epsilon,
			Delta:      *delta,
			Rng:        rand.New(rand.NewSource(*seed*1000 + int64(n))),
			Accountant: &acct,
		}
	}

	var res *core.RunResult
	mode := "in-process coordinator"
	switch {
	case *chaosSpec != "":
		mode = "distributed agents under chaos schedule"
		sched, perr := chaos.ParseSpec(*chaosSpec)
		if perr != nil {
			return perr
		}
		if *phaseTO <= 0 {
			*phaseTO = 2 * time.Second
		}
		var report *chaos.Report
		res, report, err = chaos.Run(context.Background(), inst, chaos.Config{
			BS:         sim.BSConfig{PhaseTimeout: *phaseTO},
			Sub:        core.DefaultSubproblemConfig(),
			PrivacyFor: privacy,
			Schedule:   sched,
		})
		if err == nil {
			defer func() {
				fmt.Printf("\nchaos: %d scheduled events fired, %d never triggered\n",
					len(report.Fired), len(report.Unfired))
				for _, f := range report.Fired {
					fmt.Printf("  %s (fired at sweep %d phase %d)\n", f.Event, f.AtSweep, f.AtPhase)
				}
			}()
		}
	case *distributed:
		mode = "distributed agents (in-memory bus)"
		var stats transport.Stats
		res, stats, err = sim.RunInmemWithStats(context.Background(), inst, sim.BSConfig{}, core.DefaultSubproblemConfig(), privacy)
		if err == nil {
			defer fmt.Printf("\nBS traffic: %d messages sent (%d payload bytes), %d received (%d bytes)\n",
				stats.SentMessages, stats.SentBytes, stats.RecvMessages, stats.RecvBytes)
		}
	case *regions > 1:
		mode = fmt.Sprintf("multi-BS coordination (%d regions)", *regions)
		if *regions > inst.N {
			return fmt.Errorf("cannot split %d SBSs into %d regions", inst.N, *regions)
		}
		parts := make([][]int, *regions)
		for n := 0; n < inst.N; n++ {
			parts[n%*regions] = append(parts[n%*regions], n)
		}
		res, err = core.RunMultiBS(inst, core.MultiBSConfig{
			Regions: parts,
			Sub:     core.DefaultSubproblemConfig(),
			Privacy: privacy(0),
		})
	default:
		cfg := core.DefaultConfig()
		cfg.Privacy = privacy(0)
		cfg.Restarts = *restarts
		cfg.RestartSeed = *seed
		cfg.Engine = engineKind
		cfg.Workers = *workers
		switch engineKind {
		case model.EngineJacobi:
			mode = "in-process coordinator (reference Jacobi rounds)"
		case model.EngineParallelJacobi:
			mode = "in-process coordinator (parallel Jacobi worker pool)"
		}
		var store *model.CheckpointStore
		if *ckptDir != "" {
			store, err = model.NewCheckpointStore(*ckptDir, *ckptRetain)
			if err != nil {
				return err
			}
			// A checkpointed private run needs a seekable noise source: the
			// snapshot records the stream position so a resumed run replays
			// the identical noise (a bare *rand.Rand has no position).
			if cfg.Privacy != nil {
				cfg.Privacy.Rng = nil
				cfg.Privacy.Noise = core.NewNoiseSource(*seed * 1000)
			}
			cfg.Checkpoint = &core.CheckpointConfig{Sink: store, EverySweeps: 1}
		}
		var coord *core.Coordinator
		coord, err = core.NewCoordinator(inst, cfg)
		if err != nil {
			return err
		}
		defer coord.Close()
		if *resume {
			mode += " (resumed)"
			// Resume follows an interrupted run: CRC-verify candidates and
			// quarantine corrupt ones on the way to the newest intact.
			ck, lerr := store.DeepLatest()
			if lerr != nil {
				return fmt.Errorf("resume from %s: %w", *ckptDir, lerr)
			}
			fmt.Printf("resuming from checkpoint at sweep %d phase %d\n\n", ck.Sweep, ck.Phase)
			res, err = coord.Resume(ck)
		} else {
			res, err = coord.Run()
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 (%s): %s\n", mode, res.Solution)
	fmt.Printf("converged=%v after %d sweeps; served fraction %.1f%%\n",
		res.Converged, res.Sweeps, 100*model.ServedFraction(inst, res.Solution.Routing))
	fmt.Println("cost per sweep:")
	for i, c := range res.History {
		fmt.Printf("  sweep %2d: %.1f\n", i+1, c)
	}
	for n := 0; n < inst.N; n++ {
		fmt.Printf("SBS %d caches %v (load %.1f / %.0f)\n",
			n, res.Solution.Caching.Contents(n), res.Solution.Routing.Load(inst, n), inst.Bandwidth[n])
	}
	if total := res.TotalFaults(); res.Faults != nil && total != (core.SBSFaultStats{}) {
		fmt.Println("fault accounting (BS view):")
		for n, f := range res.Faults {
			if f == (core.SBSFaultStats{}) {
				continue
			}
			fmt.Printf("  SBS %d: misses=%d retries=%d malformed=%d quarantines=%d skipped-phases=%d failed-probes=%d\n",
				n, f.Misses, f.Retries, f.Malformed, f.QuarantineSpans, f.SkippedPhases, f.FailedProbes)
		}
	}
	if *epsilon > 0 {
		fmt.Printf("\n%s\n", acct.String())
	}
	if *saveSol != "" {
		f, err := os.Create(*saveSol)
		if err != nil {
			return err
		}
		if err := res.Solution.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote solution to %s\n", *saveSol)
	}
	if *validate {
		report, err := sim.ValidatePolicy(inst, res.Solution, sim.ValidateOptions{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("\npacket-level replay: realized cost %.1f vs model %.1f (error %.2f%%, %d/%d edge-served, %d fallbacks)\n",
			report.RealizedCost.Total, report.ModelCost.Total, report.RelativeError*100,
			report.EdgeServed, report.Requests, report.Fallbacks)
	}

	if *compare {
		fmt.Println()
		lrfu, err := baseline.PlanLRFU(inst, baseline.LRFUConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("LRFU (online replay): cost=%.1f (edge=%.1f backhaul=%.1f), hit rate %.1f%%\n",
			lrfu.OnlineCost.Total, lrfu.OnlineCost.Edge, lrfu.OnlineCost.Backhaul, 100*lrfu.HitRate)
		nc, err := baseline.NoCache(inst)
		if err != nil {
			return err
		}
		fmt.Printf("no-cache ceiling:     cost=%.1f\n", nc.Cost.Total)
		fmt.Printf("Algorithm 1 saves %.1f%% versus LRFU and %.1f%% versus no caching\n",
			100*(lrfu.OnlineCost.Total-res.Solution.Cost.Total)/lrfu.OnlineCost.Total,
			100*(nc.Cost.Total-res.Solution.Cost.Total)/nc.Cost.Total)
	}
	return sess.Stop()
}
