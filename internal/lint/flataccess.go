package lint

import (
	"go/ast"
	"go/types"
)

// FlatAccess preserves the flat-tensor refactor boundary from PR 1: the
// stride arithmetic of model.Mat and model.Tensor3 (Data[u*F+f],
// Data[(n*U+u)*F+f]) lives in exactly one place — internal/model's
// accessor methods (At/Set/Add/Row/SBSRow and friends). Outside that
// package, touching the Data backing slice directly re-scatters the
// layout convention across the codebase, where a future stride change
// (padding, blocking, SoA splits) cannot find it. Hot loops that need
// whole-matrix traversal get a dedicated accessor on the model type
// instead.
var FlatAccess = &Analyzer{
	Name: "flataccess",
	Doc:  "no raw Mat/Tensor3 backing-slice (.Data) access outside internal/model",
	Run:  runFlatAccess,
}

const modelPkgPath = "edgecache/internal/model"

func runFlatAccess(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Path == modelPkgPath {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Data" {
				return true
			}
			tv, ok := pkg.Info.Types[sel.X]
			if !ok || tv.Type == nil {
				return true
			}
			name := flatTensorTypeName(tv.Type)
			if name == "" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"raw access to model.%s backing storage outside internal/model; use the accessor API (At/Set/Add/Row/SBSRow) or add a dedicated accessor to internal/model", name)
			return true
		})
	}
}

// flatTensorTypeName returns "Mat" or "Tensor3" when t (possibly behind a
// pointer) is one of the flat tensor types, else "".
func flatTensorTypeName(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != modelPkgPath {
		return ""
	}
	if name := obj.Name(); name == "Mat" || name == "Tensor3" {
		return name
	}
	return ""
}
