package soak

// ddmin is Zeller's delta-debugging minimization over an event list: given
// a failing sequence and an interestingness test ("does this subset still
// trigger the same failure?"), it returns a 1-minimal subsequence — every
// remaining event is necessary, in the sense that removing any single one
// makes the failure disappear. Order is preserved, which is what keeps
// chaos schedule subsets parseable: a subsequence of a per-target-ordered
// event list is still per-target-ordered.
//
// test is called O(n^2) times in the worst case; callers bound the work by
// returning false once their run budget is exhausted (the result is then
// the smallest interesting subset found so far, still a valid repro, just
// possibly not 1-minimal).
func ddmin[T any](items []T, test func([]T) bool) []T {
	if len(items) <= 1 {
		return items
	}
	current := items
	granularity := 2
	for len(current) >= 2 {
		chunks := split(current, granularity)
		reduced := false

		// Try each chunk alone: the failure may live entirely inside one.
		for _, chunk := range chunks {
			if len(chunk) < len(current) && test(chunk) {
				current = chunk
				granularity = 2
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}

		// Try each complement: removing one chunk may keep the failure.
		if granularity > 2 {
			for i := range chunks {
				complement := without(chunks, i)
				if len(complement) < len(current) && test(complement) {
					current = complement
					granularity = max(granularity-1, 2)
					reduced = true
					break
				}
			}
			if reduced {
				continue
			}
		}

		// Refine granularity or stop.
		if granularity >= len(current) {
			return current
		}
		granularity = min(granularity*2, len(current))
	}
	return current
}

// split partitions items into n contiguous chunks of near-equal size.
func split[T any](items []T, n int) [][]T {
	if n > len(items) {
		n = len(items)
	}
	chunks := make([][]T, 0, n)
	size := len(items) / n
	extra := len(items) % n
	at := 0
	for i := 0; i < n; i++ {
		end := at + size
		if i < extra {
			end++
		}
		chunks = append(chunks, items[at:end])
		at = end
	}
	return chunks
}

// without concatenates every chunk except chunks[skip], preserving order.
func without[T any](chunks [][]T, skip int) []T {
	var out []T
	for i, c := range chunks {
		if i != skip {
			out = append(out, c...)
		}
	}
	return out
}
