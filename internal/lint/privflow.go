package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Privflow enforces the paper's privacy invariant (§IV, Theorem 5)
// statically: raw per-MU demand, dual multipliers μ, and pre-LPPM routing
// shares never reach an egress point un-noised. Sources are declarations
// tagged //edgecache:private (struct fields whose reads yield raw values,
// and functions whose results are raw); sinks are transport sends
// (Endpoint.Send and every implementation), checkpoint encoding
// (CheckpointSink.Save, Checkpoint.MarshalBinary), and logging (log.*,
// fmt.Print family); the only sanitizers are the LPPM noise mechanisms
// (dp.LPPMNoise, dp.BoundedLaplace.Sample, core.LPPM.Perturb/PerturbSBS).
// Any source→sink dataflow path that does not pass a sanitizer is a
// finding.
//
// The analysis is a summary-based interprocedural taint propagation:
// every module function gets a fixpoint summary (which parameters flow to
// its results, which parameters it forwards to a sink), and a reporting
// pass then walks each body with those summaries, flagging sink calls —
// direct or through a summarized callee — whose arguments carry
// source-derived taint.
//
// Dataflow semantics, chosen to match the repo's sanitization idiom:
//
//   - assignments to a plain variable are strong updates in lexical
//     order ("last writer wins"), so the canonical shape
//     `routing := res.Routing; if lppm != nil { routing, _ =
//     lppm.Perturb(...) }` leaves routing clean — the analyzer trusts the
//     nil-guard, because lppm == nil means privacy is configured off;
//   - writes through a local's field/index (`ck.Mu[n] = raw`) taint the
//     local as a whole (weak update), so building a checkpoint from raw μ
//     taints the checkpoint value handed to Save;
//   - stores into non-local state (receiver fields, SetSBS-style calls)
//     are NOT tracked — heap flows are privflow's documented blind spot,
//     exactly as interface dispatch is noalloc's. Egress code in this
//     repo reads its payloads from values built locally, which the
//     tracked flows cover;
//   - calls outside the module conservatively taint their results when
//     any argument is tainted; dynamic calls through function values
//     propagate the same way but are never reported (no static callee to
//     name).
var Privflow = &Analyzer{
	Name: "privflow",
	Doc:  "tagged //edgecache:private data must pass an LPPM sanitizer before transport, checkpoint, or log egress",
	Run:  runPrivflow,
}

// privateDirective tags a struct field or function whose value/results are
// raw private data. Trailing words describe what is private.
const privateDirective = "//edgecache:private"

func runPrivflow(pass *Pass) {
	for _, d := range pass.Prog.privflowResults()[pass.Pkg.Path] {
		*pass.diags = append(*pass.diags, d)
	}
}

// taintMask tracks what a value may derive from: bit i = "depends on
// parameter i of the function under analysis", and the top bit = "derives
// from a tagged source". Parameter bits feed the summaries; the inherent
// bit is what the reporting pass flags at sinks.
type taintMask uint64

const (
	inherentTaint taintMask = 1 << 63
	paramBits     taintMask = inherentTaint - 1
)

func paramBit(i int) taintMask {
	if i > 62 {
		i = 62 // merge overflow params; precision loss only, never unsoundness
	}
	return 1 << uint(i)
}

// funcSummary is the fixpoint summary of one module function.
type funcSummary struct {
	// retMask: parameter bits whose taint flows into some result, plus
	// the inherent bit when a result derives from a source regardless of
	// arguments (tagged functions, or bodies reading tagged fields).
	retMask taintMask
	// sinkParams: parameter bits that reach a sink inside the function
	// (transitively); sinkDesc names the sink for the caller-side report.
	sinkParams taintMask
	sinkDesc   string
}

// privConfig is the program-wide source/sink/sanitizer classification.
type privConfig struct {
	sourceFields map[types.Object]bool
	sourceFuncs  map[*types.Func]bool
	endpoint     *types.Interface // edgecache/internal/transport.Endpoint
	ckptSink     *types.Interface // edgecache/internal/model.CheckpointSink
}

// privflowResults runs the whole-program analysis once and caches the
// per-package diagnostics.
func (prog *Program) privflowResults() map[string][]Diagnostic {
	prog.privflowOnce.Do(func() {
		prog.privflowDiag = map[string][]Diagnostic{}
		cfg := &privConfig{
			sourceFields: map[types.Object]bool{},
			sourceFuncs:  map[*types.Func]bool{},
			endpoint:     namedInterface(prog, transportPkgPath, "Endpoint"),
			ckptSink:     namedInterface(prog, "edgecache/internal/model", "CheckpointSink"),
		}
		prog.collectPrivateTags(cfg)
		funcs := prog.moduleFuncs()

		// Fixpoint over function summaries. Summaries only grow (masks OR
		// monotonically), so iteration terminates; the bound guards
		// against pathological chains.
		summaries := map[*types.Func]*funcSummary{}
		for fn := range funcs {
			s := &funcSummary{}
			if cfg.sourceFuncs[fn] {
				s.retMask = inherentTaint
			}
			summaries[fn] = s
		}
		for round := 0; round < 32; round++ {
			changed := false
			for fn, mf := range funcs {
				w := newTaintWalker(prog, mf.pkg, cfg, funcs, summaries, nil)
				w.seedParams(fn, mf.decl)
				w.walkBody(mf.decl.Body)
				s := summaries[fn]
				retMask := s.retMask | w.retMask
				sinkParams := s.sinkParams | (w.sinkParams & paramBits)
				if retMask != s.retMask || sinkParams != s.sinkParams {
					s.retMask, s.sinkParams = retMask, sinkParams
					if s.sinkDesc == "" {
						s.sinkDesc = w.sinkDesc
					}
					changed = true
				}
			}
			if !changed {
				break
			}
		}

		// Reporting pass: parameters start clean; only inherent taint
		// (source reads in this body or via callee summaries) can reach a
		// sink and be flagged.
		for _, mf := range funcs {
			pkg := mf.pkg
			w := newTaintWalker(prog, pkg, cfg, funcs, summaries, func(pos token.Pos, msg string) {
				prog.privflowDiag[pkg.Path] = append(prog.privflowDiag[pkg.Path], Diagnostic{
					Analyzer: "privflow",
					Pos:      prog.Fset.Position(pos),
					Message:  msg,
				})
			})
			w.walkBody(mf.decl.Body)
		}
	})
	return prog.privflowDiag
}

// collectPrivateTags finds every //edgecache:private directive on struct
// fields and function declarations.
func (prog *Program) collectPrivateTags(cfg *privConfig) {
	hasTag := func(doc *ast.CommentGroup) bool {
		if doc == nil {
			return false
		}
		for _, c := range doc.List {
			if text := strings.TrimSpace(c.Text); text == privateDirective ||
				strings.HasPrefix(text, privateDirective+" ") {
				return true
			}
		}
		return false
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.FuncDecl:
					if hasTag(node.Doc) {
						if fn, ok := pkg.Info.Defs[node.Name].(*types.Func); ok {
							cfg.sourceFuncs[fn] = true
						}
					}
					return true
				case *ast.StructType:
					for _, field := range node.Fields.List {
						if !hasTag(field.Doc) && !hasTag(field.Comment) {
							continue
						}
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								cfg.sourceFields[obj] = true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// isSanitizer matches the LPPM noise mechanisms by identity: package path,
// receiver type name, function name.
func isSanitizer(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvName(sig.Recv().Type())
	}
	switch fn.Pkg().Path() {
	case "edgecache/internal/dp":
		return (recv == "" && fn.Name() == "LPPMNoise") ||
			(recv == "BoundedLaplace" && fn.Name() == "Sample")
	case "edgecache/internal/core":
		return recv == "LPPM" && (fn.Name() == "Perturb" || fn.Name() == "PerturbSBS")
	}
	return false
}

// fmtPrintSinks are the fmt functions that write to a stream; Sprint* only
// build strings and merely propagate taint.
var fmtPrintSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// sinkDescFor classifies a resolved callee as a sink and names it.
func (cfg *privConfig) sinkDescFor(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "log":
			return "log output"
		case "fmt":
			if fmtPrintSinks[fn.Name()] {
				return "stream print"
			}
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if fn.Name() == "Send" && implementsOrIs(recv, cfg.endpoint) {
		return "transport send"
	}
	if fn.Name() == "Save" && implementsOrIs(recv, cfg.ckptSink) {
		return "checkpoint save"
	}
	if fn.Name() == "MarshalBinary" && recvName(recv) == "Checkpoint" &&
		fn.Pkg() != nil && fn.Pkg().Path() == "edgecache/internal/model" {
		return "checkpoint encode"
	}
	return ""
}

// taintWalker evaluates taint over one function body. With report == nil
// it runs in summary mode (parameters seeded with their bits); otherwise
// it runs in reporting mode (parameters clean, sinks flagged).
type taintWalker struct {
	prog      *Program
	pkg       *Package
	cfg       *privConfig
	funcs     map[*types.Func]modFunc
	summaries map[*types.Func]*funcSummary
	report    func(pos token.Pos, msg string)

	state      map[types.Object]taintMask
	retMask    taintMask
	sinkParams taintMask
	sinkDesc   string
	// reported dedups findings: loop bodies are walked twice for
	// convergence, and a sink must still be flagged exactly once.
	reported map[token.Pos]bool
	// locals are the variables declared inside the body under analysis.
	// Weak updates (writes through a field/index) only taint these:
	// `ck.Mu[n] = raw` taints the locally-built ck, while stores through
	// parameters and receivers are the documented heap blind spot.
	locals map[types.Object]bool
}

func newTaintWalker(prog *Program, pkg *Package, cfg *privConfig,
	funcs map[*types.Func]modFunc, summaries map[*types.Func]*funcSummary,
	report func(token.Pos, string)) *taintWalker {
	return &taintWalker{
		prog: prog, pkg: pkg, cfg: cfg, funcs: funcs, summaries: summaries,
		report: report, state: map[types.Object]taintMask{},
		reported: map[token.Pos]bool{},
		locals:   map[types.Object]bool{},
	}
}

// seedParams assigns parameter bit i to parameter i (receiver first).
func (w *taintWalker) seedParams(fn *types.Func, decl *ast.FuncDecl) {
	i := 0
	assign := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			for _, name := range f.Names {
				if obj := w.pkg.Info.Defs[name]; obj != nil {
					w.state[obj] = paramBit(i)
				}
				i++
			}
		}
	}
	assign(decl.Recv)
	assign(decl.Type.Params)
}

// paramMasks returns the call-site masks aligned with the callee's
// parameter numbering (receiver first when present).
func (w *taintWalker) paramMasks(callee *types.Func, call *ast.CallExpr) []taintMask {
	var masks []taintMask
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			masks = append(masks, w.evalMask(sel.X))
		} else {
			masks = append(masks, 0)
		}
	}
	for _, arg := range call.Args {
		masks = append(masks, w.evalMask(arg))
	}
	return masks
}

func (w *taintWalker) walkBody(block *ast.BlockStmt) {
	if block == nil {
		return
	}
	for _, stmt := range block.List {
		w.walkStmt(stmt)
	}
}

func (w *taintWalker) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.evalMask(s.Cond)
		w.walkBody(s.Body)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.BlockStmt:
		w.walkBody(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.evalMask(s.Cond)
		}
		// Two passes so taint flowing backwards through loop-carried
		// variables (x = y; y = raw) converges.
		for i := 0; i < 2; i++ {
			w.walkBody(s.Body)
			if s.Post != nil {
				w.walkStmt(s.Post)
			}
		}
	case *ast.RangeStmt:
		m := w.evalMask(s.X)
		for _, lhs := range []ast.Expr{s.Key, s.Value} {
			if ident, ok := lhs.(*ast.Ident); ok && ident.Name != "_" {
				if obj := w.lhsObject(ident, s.Tok == token.DEFINE); obj != nil {
					if s.Tok == token.DEFINE {
						w.locals[obj] = true
					}
					w.state[obj] = m
				}
			}
		}
		for i := 0; i < 2; i++ {
			w.walkBody(s.Body)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.evalMask(s.Tag)
		}
		for _, clause := range s.Body.List {
			for _, st := range clause.(*ast.CaseClause).Body {
				w.walkStmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			for _, st := range clause.(*ast.CaseClause).Body {
				w.walkStmt(st)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm)
			}
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.retMask |= w.evalMask(e)
		}
	case *ast.ExprStmt:
		w.evalMask(s.X)
	case *ast.GoStmt:
		w.evalMask(s.Call)
	case *ast.DeferStmt:
		w.evalMask(s.Call)
	case *ast.SendStmt:
		m := w.evalMask(s.Value)
		if obj := baseObject(w.pkg, s.Chan); obj != nil {
			w.state[obj] |= m
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var m taintMask
					if len(vs.Values) == len(vs.Names) {
						m = w.evalMask(vs.Values[i])
					} else if len(vs.Values) == 1 {
						m = w.evalMask(vs.Values[0])
					}
					if obj := w.pkg.Info.Defs[name]; obj != nil {
						w.locals[obj] = true
						w.state[obj] = m
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.evalMask(s.X)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt, nil:
	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.evalMask(e)
				return false
			}
			return true
		})
	}
}

// walkAssign applies the update semantics: strong for plain identifiers,
// weak (container-tainting) for writes through a local's field/index.
func (w *taintWalker) walkAssign(s *ast.AssignStmt) {
	var masks []taintMask
	if len(s.Rhs) == len(s.Lhs) {
		for _, rhs := range s.Rhs {
			masks = append(masks, w.evalMask(rhs))
		}
	} else {
		// Tuple assignment from one call: every LHS gets the call's mask.
		m := w.evalMask(s.Rhs[0])
		for range s.Lhs {
			masks = append(masks, m)
		}
	}
	for i, lhs := range s.Lhs {
		if ident, ok := lhs.(*ast.Ident); ok {
			if ident.Name == "_" {
				continue
			}
			if obj := w.lhsObject(ident, s.Tok == token.DEFINE); obj != nil {
				if s.Tok == token.DEFINE {
					w.locals[obj] = true
				}
				if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
					w.state[obj] = masks[i]
				} else {
					w.state[obj] |= masks[i] // op= reads the old value too
				}
			}
			continue
		}
		if obj := rootIdentObject(w.pkg, lhs); obj != nil && w.locals[obj] {
			w.state[obj] |= masks[i]
		}
	}
}

// rootIdentObject resolves the identifier an lvalue is rooted at (`ck`
// for `ck.Mu[n]`), unlike baseObject which prefers the field.
func rootIdentObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (w *taintWalker) lhsObject(ident *ast.Ident, define bool) types.Object {
	if define {
		if obj := w.pkg.Info.Defs[ident]; obj != nil {
			return obj
		}
	}
	return w.pkg.Info.Uses[ident]
}

func (w *taintWalker) evalMask(e ast.Expr) taintMask {
	switch x := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[x]; obj != nil {
			return w.state[obj]
		}
		return 0
	case *ast.SelectorExpr:
		if obj := w.pkg.Info.Uses[x.Sel]; obj != nil && w.cfg.sourceFields[obj] {
			return inherentTaint | w.evalMask(x.X)
		}
		return w.evalMask(x.X)
	case *ast.CallExpr:
		return w.evalCall(x)
	case *ast.CompositeLit:
		var m taintMask
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				m |= w.evalMask(kv.Value)
			} else {
				m |= w.evalMask(elt)
			}
		}
		return m
	case *ast.UnaryExpr:
		return w.evalMask(x.X)
	case *ast.BinaryExpr:
		return w.evalMask(x.X) | w.evalMask(x.Y)
	case *ast.ParenExpr:
		return w.evalMask(x.X)
	case *ast.StarExpr:
		return w.evalMask(x.X)
	case *ast.IndexExpr:
		w.evalMask(x.Index)
		return w.evalMask(x.X)
	case *ast.SliceExpr:
		return w.evalMask(x.X)
	case *ast.TypeAssertExpr:
		return w.evalMask(x.X)
	case *ast.FuncLit:
		// Closures share the enclosing state: they capture the same
		// locals, and the repo's goroutine bodies egress captured data.
		w.walkBody(x.Body)
		return 0
	default:
		return 0
	}
}

func (w *taintWalker) evalCall(call *ast.CallExpr) taintMask {
	// Conversions pass taint through.
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		var m taintMask
		for _, arg := range call.Args {
			m |= w.evalMask(arg)
		}
		return m
	}
	// Builtins: len/cap of a tainted container is a benign scalar;
	// everything else (append, copy targets, ...) propagates.
	if ident, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := w.pkg.Info.Uses[ident].(*types.Builtin); isBuiltin {
			var m taintMask
			for _, arg := range call.Args {
				m |= w.evalMask(arg)
			}
			if ident.Name == "len" || ident.Name == "cap" {
				return 0
			}
			return m
		}
	}

	callee := calleeFunc(w.pkg, call)
	if callee == nil {
		// Dynamic call through a function value: propagate, never report.
		var m taintMask
		for _, arg := range call.Args {
			m |= w.evalMask(arg)
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			m |= w.evalMask(sel.X)
		}
		w.taintAddrArgs(call, m)
		return m
	}

	masks := w.paramMasks(callee, call)
	var combined taintMask
	for _, m := range masks {
		combined |= m
	}

	if isSanitizer(callee) {
		return 0
	}
	if desc := w.cfg.sinkDescFor(callee); desc != "" {
		w.hitSink(call.Pos(), desc, combined, "")
		return 0
	}
	if s, ok := w.summaries[callee]; ok {
		if s.sinkParams != 0 {
			var fwd taintMask
			for i, m := range masks {
				if s.sinkParams&paramBit(i) != 0 {
					fwd |= m
				}
			}
			w.hitSink(call.Pos(), s.sinkDesc, fwd, callee.Name())
		}
		var ret taintMask
		if s.retMask&inherentTaint != 0 {
			ret |= inherentTaint
		}
		for i, m := range masks {
			if s.retMask&paramBit(i) != 0 {
				ret |= m
			}
		}
		return ret
	}
	// Non-module call: conservative propagation (fmt.Sprintf, json.Marshal,
	// append-style helpers all keep their inputs recoverable).
	w.taintAddrArgs(call, combined)
	return combined
}

// taintAddrArgs conservatively taints address-taken locals anywhere in a
// call to an unresolved callee: fmt.Sscanf(s, "%f", &x) writes through the
// pointer, and chained builders like gob.NewEncoder(&buf).Encode(v) write
// the encoded v into buf. Scanning the whole call expression (not just the
// outermost argument list) is what lets EncodePayload's buffer pick up its
// input's taint.
func (w *taintWalker) taintAddrArgs(call *ast.CallExpr, mask taintMask) {
	if mask == 0 {
		return
	}
	ast.Inspect(call, func(n ast.Node) bool {
		if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.AND {
			if obj := rootIdentObject(w.pkg, un.X); obj != nil && w.locals[obj] {
				w.state[obj] |= mask
			}
		}
		return true
	})
}

// hitSink records a sink contact: parameter-derived taint feeds the
// summary, inherent taint is a finding in reporting mode.
func (w *taintWalker) hitSink(pos token.Pos, desc string, mask taintMask, via string) {
	if desc == "" {
		desc = "sink"
	}
	w.sinkParams |= mask & paramBits
	if w.sinkDesc == "" {
		w.sinkDesc = desc
	}
	if w.report != nil && mask&inherentTaint != 0 && !w.reported[pos] {
		w.reported[pos] = true
		msg := fmt.Sprintf("//edgecache:private data reaches %s without passing an LPPM sanitizer (dp.LPPMNoise, dp.BoundedLaplace.Sample, core.LPPM.Perturb/PerturbSBS)", desc)
		if via != "" {
			msg = fmt.Sprintf("//edgecache:private data reaches %s via %s without passing an LPPM sanitizer", desc, via)
		}
		w.report(pos, msg)
	}
}
