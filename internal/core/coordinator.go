package core

import (
	"fmt"
	"math"
	"math/rand"

	"edgecache/internal/dp"
	"edgecache/internal/model"
)

// NoiseMechanism selects the noise family used to perturb routing uploads.
type NoiseMechanism int

// Supported mechanisms.
const (
	// MechanismLaplace is the paper's LPPM: bounded Laplace noise on
	// [0, δ·y] with scale β = Δf/ε (ε-DP, Theorem 4). The default.
	MechanismLaplace NoiseMechanism = iota
	// MechanismGaussian subtracts a |N(0,σ)| draw truncated to [0, δ·y]
	// with the analytic (ε, δ_DP) calibration — the Gaussian variant the
	// paper's §VII lists as future work.
	MechanismGaussian
	// MechanismUniform subtracts plain uniform noise on [0, δ·y]. It has
	// no calibrated DP guarantee; it is the "directly added random noise"
	// strawman the paper's §IV argues against, kept for the noise-family
	// ablation.
	MechanismUniform
)

// String names the mechanism.
func (m NoiseMechanism) String() string {
	switch m {
	case MechanismLaplace:
		return "laplace"
	case MechanismGaussian:
		return "gaussian"
	case MechanismUniform:
		return "uniform"
	default:
		return fmt.Sprintf("NoiseMechanism(%d)", int(m))
	}
}

// PrivacyConfig enables LPPM (§IV of the paper) on every routing upload.
type PrivacyConfig struct {
	// Epsilon is the per-release privacy budget ε; Theorem 4 calibrates the
	// Laplace scale as β = Sensitivity/ε.
	Epsilon float64
	// Delta is the paper's Laplace component factor δ ∈ [0,1): the noise
	// drawn for routing value y lives on [0, δ·y] (eq. 28). It is NOT the
	// (ε,δ)-DP slack.
	Delta float64
	// Sensitivity is Δf in eq. 30. The routing values are fractions in
	// [0,1], so the default (0 → 1) is the worst-case L1 change from one
	// SBS altering one routing entry.
	Sensitivity float64
	// Rng drives the noise. Required.
	Rng *rand.Rand
	// Accountant optionally records every ε spend, labeled per SBS.
	Accountant *dp.Accountant
	// Mechanism selects the noise family; the zero value is the paper's
	// bounded Laplace (LPPM).
	Mechanism NoiseMechanism
	// DPDelta is the (ε, δ)-DP slack used only by MechanismGaussian.
	// 0 means 1e-5. Distinct from Delta, the noise-interval factor.
	DPDelta float64
}

func (p *PrivacyConfig) validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("core: privacy epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Delta < 0 || p.Delta >= 1 {
		return fmt.Errorf("core: privacy delta must be in [0,1), got %v", p.Delta)
	}
	if p.Sensitivity < 0 {
		return fmt.Errorf("core: privacy sensitivity must be non-negative, got %v", p.Sensitivity)
	}
	if p.Rng == nil {
		return fmt.Errorf("core: privacy config requires an Rng")
	}
	switch p.Mechanism {
	case MechanismLaplace, MechanismUniform:
	case MechanismGaussian:
		if d := p.dpDelta(); d <= 0 || d >= 1 {
			return fmt.Errorf("core: gaussian mechanism needs DPDelta in (0,1), got %v", d)
		}
	default:
		return fmt.Errorf("core: unknown noise mechanism %v", p.Mechanism)
	}
	return nil
}

func (p *PrivacyConfig) dpDelta() float64 {
	if p.DPDelta > 0 {
		return p.DPDelta
	}
	return 1e-5
}

func (p *PrivacyConfig) sensitivity() float64 {
	if p.Sensitivity > 0 {
		return p.Sensitivity
	}
	return 1
}

// Config tunes Algorithm 1.
type Config struct {
	// Sub is the per-SBS sub-problem configuration.
	Sub SubproblemConfig
	// Gamma is the relative-improvement convergence threshold γ; the sweep
	// stops when |f(τ) − f(τ−1)|/f(τ) ≤ γ. 0 means the default 1e-6.
	Gamma float64
	// MaxSweeps is T, the sweep budget. 0 means the default 50.
	MaxSweeps int
	// Privacy, when non-nil, applies LPPM to every routing upload.
	Privacy *PrivacyConfig

	// BroadcastTap, when non-nil, observes every aggregate y_{-n} the BS
	// broadcasts (sweep, phase n, matrix), modeling the paper's §IV
	// attacker who listens on the broadcast channel. The matrices are
	// materialized per call (the tap owns them), so enabling a tap trades
	// the sweep loop's zero-allocation property for observability.
	// Used by internal/attack and experiment E15.
	BroadcastTap func(sweep, phase int, yMinus [][]float64)
	// UploadTap, when non-nil, observes each SBS's routing before (clean)
	// and after (upload) LPPM. It is experiment instrumentation — ground
	// truth for measuring what an attacker could recover — and must never
	// be wired up in a deployment. The matrices are materialized per call;
	// the tap owns them.
	UploadTap func(sweep, phase int, clean, upload [][]float64)

	// Restarts is an extension beyond the paper: because the no-overserve
	// constraint (4) couples the SBS blocks, the Gauss-Seidel sweep can
	// settle in an order-dependent equilibrium (see DESIGN.md and
	// experiment E7). When Restarts > 0 the coordinator reruns the
	// algorithm that many extra times with randomly shuffled SBS update
	// orders and keeps the cheapest result. The first attempt always uses
	// the paper's fixed 1..N order, so the result is never worse than
	// plain Algorithm 1. Requires RestartSeed-driven determinism.
	Restarts int
	// RestartSeed seeds the order shuffling for Restarts > 0.
	RestartSeed int64
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{Sub: DefaultSubproblemConfig()}
}

func (c Config) withDefaults() Config {
	c.Sub = c.Sub.withDefaults()
	if c.Gamma <= 0 {
		c.Gamma = 1e-6
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 50
	}
	return c
}

// RunResult is the outcome of a full Algorithm 1 run.
type RunResult struct {
	// Solution is the final caching and routing policy as seen by the BS
	// (i.e. post-LPPM when privacy is enabled) with its serving cost.
	Solution *model.Solution
	// History records the total serving cost after every sweep; History[0]
	// is the cost after sweep τ=0.
	History []float64
	// Sweeps is the number of sweeps executed; Converged reports whether
	// the γ-criterion stopped the run (as opposed to the sweep budget).
	Sweeps    int
	Converged bool
	// Faults holds the per-SBS fault accounting of a distributed run
	// (one entry per SBS). It is nil for in-process runs, which have no
	// network to fail.
	Faults []SBSFaultStats
}

// SBSFaultStats is the BS-observed fault record of one SBS agent over a
// distributed run. The in-process Coordinator never populates it; the sim
// BS agent does, and the chaos tests assert it against the injected fault
// schedule.
type SBSFaultStats struct {
	// Misses counts phases whose upload never arrived within the full
	// PhaseTimeout window (each one stalls the sweep by that timeout).
	Misses int
	// Retries counts MsgPhaseStart retransmissions within phase windows.
	Retries int
	// Malformed counts uploads that arrived but failed validation
	// (undecodable payload or wrong shapes) and were discarded.
	Malformed int
	// QuarantineSpans counts entries into quarantine (including
	// re-entries after a failed rejoin probe).
	QuarantineSpans int
	// SkippedPhases counts phases skipped outright while quarantined —
	// sweeps that did NOT burn a PhaseTimeout on a dead SBS.
	SkippedPhases int
	// FailedProbes counts cheap rejoin probes that went unanswered (each
	// costs only ProbeTimeout, not PhaseTimeout).
	FailedProbes int
}

// TotalFaults sums the per-SBS fault stats into one record.
func (r *RunResult) TotalFaults() SBSFaultStats {
	var t SBSFaultStats
	for _, f := range r.Faults {
		t.Misses += f.Misses
		t.Retries += f.Retries
		t.Malformed += f.Malformed
		t.QuarantineSpans += f.QuarantineSpans
		t.SkippedPhases += f.SkippedPhases
		t.FailedProbes += f.FailedProbes
	}
	return t
}

// Coordinator runs Algorithm 1 in-process: it plays both the BS role
// (aggregating and re-broadcasting routing policies) and the SBS role
// (solving P_n). The message-passing deployment in internal/sim produces
// identical results over a real transport; tests assert that equivalence.
type Coordinator struct {
	inst *model.Instance
	cfg  Config
	subs []*Subproblem
	lppm *LPPM // nil when privacy is off
}

// NewCoordinator validates the instance and precomputes the per-SBS
// sub-problem solvers.
func NewCoordinator(inst *model.Instance, cfg Config) (*Coordinator, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{inst: inst, cfg: cfg}
	if cfg.Privacy != nil {
		lppm, err := NewLPPM(*cfg.Privacy)
		if err != nil {
			return nil, err
		}
		c.lppm = lppm
	}
	c.subs = make([]*Subproblem, inst.N)
	for n := 0; n < inst.N; n++ {
		sub, err := NewSubproblem(inst, n, cfg.Sub)
		if err != nil {
			return nil, err
		}
		c.subs[n] = sub
	}
	return c, nil
}

// Run executes Algorithm 1 from the all-zero initial policy. With
// Config.Restarts > 0 it additionally explores shuffled SBS update orders
// and returns the cheapest run.
func (c *Coordinator) Run() (*RunResult, error) {
	order := make([]int, c.inst.N)
	for i := range order {
		order[i] = i
	}
	best, err := c.runOnce(order)
	if err != nil {
		return nil, err
	}
	if c.cfg.Restarts > 0 {
		rng := rand.New(rand.NewSource(c.cfg.RestartSeed))
		for attempt := 0; attempt < c.cfg.Restarts; attempt++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			res, err := c.runOnce(order)
			if err != nil {
				return nil, err
			}
			if res.Solution.Cost.Total < best.Solution.Cost.Total {
				best = res
			}
		}
	}
	return best, nil
}

// runOnce executes one full Algorithm 1 run with the given per-sweep SBS
// update order.
//
// The BS evaluates the uploaded aggregate after every sweep anyway
// (Algorithm 1's stop rule needs f(y(τ))), so it retains the cheapest
// policy seen and returns that. Without LPPM the sweep costs are
// non-increasing and this is exactly the final sweep; with LPPM per-sweep
// noise redraws can drift the trajectory (SBSs start duplicating demand
// their peers under-report), and keeping the best sweep is the natural
// BS-side behaviour.
func (c *Coordinator) runOnce(order []int) (*RunResult, error) {
	inst := c.inst
	x := model.NewCachingPolicy(inst)
	y := model.NewRoutingPolicy(inst) // BS view: uploaded (noised) policies

	// The BS maintains the masked aggregate Σ_n y·l incrementally: each
	// phase derives y_{-n} in O(U·F) (subtract SBS n's block) and advances
	// the aggregate from the fresh upload, replacing the O(N·U·F)
	// AggregateExcept rebuild the seed implementation performed per phase.
	tracker := model.NewAggregateTracker(inst)
	yMinus := inst.NewUFMat()

	res := &RunResult{}
	var best *model.Solution
	prevCost := math.Inf(1)
	for sweep := 0; sweep < c.cfg.MaxSweeps; sweep++ {
		for _, n := range order {
			// The BS broadcasts the aggregate routing; SBS n subtracts its
			// own last upload to obtain y_{-n} (eq. 25).
			tracker.YMinusInto(inst, y, n, yMinus)
			if c.cfg.BroadcastTap != nil {
				c.cfg.BroadcastTap(sweep, n, yMinus.Rows())
			}
			sub, err := c.subs[n].Solve(yMinus)
			if err != nil {
				return nil, err
			}
			upload := sub.Routing
			if c.lppm != nil {
				upload, err = c.lppm.PerturbSBS(n, sub.Routing)
				if err != nil {
					return nil, err
				}
			}
			if c.cfg.UploadTap != nil {
				c.cfg.UploadTap(sweep, n, sub.Routing.Rows(), upload.Rows())
			}
			x.SetRow(n, sub.Cache)
			tracker.Install(inst, y, n, yMinus, upload)
		}
		cost := model.TotalServingCostFromAggregate(inst, y, tracker.Aggregate())
		res.History = append(res.History, cost.Total)
		res.Sweeps = sweep + 1
		if best == nil || cost.Total < best.Cost.Total {
			best = &model.Solution{Caching: x.Clone(), Routing: y.Clone(), Cost: cost}
		}

		// Algorithm 1's stop rule: relative improvement below γ. The
		// absolute value guards against noise-induced oscillation under
		// LPPM (Theorem 3 guarantees convergence of the underlying
		// sequence, but individual sweeps can regress slightly).
		if cost.Total > 0 && math.Abs(prevCost-cost.Total)/cost.Total <= c.cfg.Gamma {
			res.Converged = true
			prevCost = cost.Total
			break
		}
		prevCost = cost.Total
	}

	if best == nil { // MaxSweeps == 0 cannot happen after withDefaults, but stay safe
		best = &model.Solution{Caching: x, Routing: y, Cost: model.TotalServingCost(inst, y)}
	}
	res.Solution = best
	return res, nil
}
