// Package transport carries the messages of the distributed protocol
// between the BS coordinator and the SBS agents.
//
// Two implementations are provided: an in-memory hub (tests, benchmarks,
// single-process simulations) and a TCP transport with length-prefixed gob
// frames (the multi-operator deployment story of the paper, where SBSs
// belong to different companies and only exchange protocol messages). A
// fault-injecting wrapper simulates lossy links for the failure tests.
//
// The protocol itself (message types and payloads) is defined here so both
// sides and both transports share one wire format.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
)

// MsgType enumerates the protocol messages. Values start at 1 so the gob
// zero value is detectably invalid.
type MsgType uint8

// Protocol message types.
const (
	// MsgPhaseStart is sent by the BS to one SBS at its phase of a sweep;
	// the payload is an AggregateAnnounce.
	MsgPhaseStart MsgType = iota + 1
	// MsgPolicyUpload is the SBS's reply; the payload is a PolicyUpload.
	MsgPolicyUpload
	// MsgDone tells every SBS the run converged and agents may exit.
	MsgDone
	// MsgStateSync is broadcast by a BS that resumed from a checkpoint:
	// the payload is a StateSync carrying the resume point and the
	// receiving SBS's own last BS-visible policy, so the agent rehydrates
	// its workspace instead of assuming iteration zero.
	MsgStateSync
	// MsgStateAck is the SBS's acknowledgement of a MsgStateSync (empty
	// payload; the sync point is echoed in the header).
	MsgStateAck
)

// String names the message type.
func (m MsgType) String() string {
	switch m {
	case MsgPhaseStart:
		return "phase-start"
	case MsgPolicyUpload:
		return "policy-upload"
	case MsgDone:
		return "done"
	case MsgStateSync:
		return "state-sync"
	case MsgStateAck:
		return "state-ack"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(m))
	}
}

// Message is one protocol datagram.
type Message struct {
	Type  MsgType
	From  string
	To    string
	Sweep int
	Phase int
	// Seq is a per-sender sequence number stamped by ReliableEndpoint so
	// receivers can discard retry-induced duplicates. 0 means the sender
	// does not use sequencing and the message is never deduplicated.
	Seq uint64
	// Payload is the gob-encoded body (AggregateAnnounce or PolicyUpload).
	Payload []byte
}

// AggregateAnnounce is the BS→SBS body: the aggregate routing of every
// other SBS, y_{-n} (eq. 25). The receiving SBS cannot recover any single
// peer's policy from it, which is the privacy premise of §III; LPPM (§IV)
// additionally protects the per-SBS uploads this aggregate is built from.
type AggregateAnnounce struct {
	YMinus [][]float64
}

// PolicyUpload is the SBS→BS body: the (possibly LPPM-perturbed) caching
// and routing decision of one SBS for one phase.
type PolicyUpload struct {
	Cache   []bool
	Routing [][]float64
}

// StateSync is the BS→SBS rehydration body sent after a coordinator
// resume: the protocol point the run continues from, plus the receiving
// SBS's OWN last policy as the BS sees it (post-LPPM). It carries no other
// SBS's data, so the privacy premise of §III is unchanged — each SBS
// only ever learns its own upload back and the aggregate of the others.
type StateSync struct {
	// Sweep and Phase are the resume point; announces strictly older are
	// pre-crash ghosts the SBS should ignore.
	Sweep int
	Phase int
	// Cache and Routing are the receiving SBS's last BS-visible policy.
	Cache   []bool
	Routing [][]float64
}

// EncodePayload gob-encodes a payload body.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePayload gob-decodes a payload body into out (a pointer). Inputs
// larger than the frame limit are rejected up front: the in-memory hub has
// no framing layer, so without this cap a hostile peer could hand the gob
// decoder an arbitrarily large allocation request.
func DecodePayload(data []byte, out any) error {
	if len(data) > maxFrameSize {
		return fmt.Errorf("transport: payload of %d bytes exceeds limit %d", len(data), maxFrameSize)
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("transport: decode payload: %w", err)
	}
	return nil
}

// Endpoint is one node's connection to the network. Implementations must
// be safe for one concurrent sender and one concurrent receiver.
type Endpoint interface {
	// Send delivers the message to the named peer. It fails if the peer is
	// unknown or the endpoint is closed; delivery is at-most-once (the
	// faulty wrapper can drop or duplicate).
	Send(ctx context.Context, to string, m Message) error
	// Recv blocks for the next inbound message.
	Recv(ctx context.Context) (Message, error)
	// Name returns the endpoint's registered name.
	Name() string
	// Close releases resources; pending and future Recv calls fail.
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknownPeer is returned when sending to an unregistered name.
var ErrUnknownPeer = errors.New("transport: unknown peer")
