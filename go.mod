module edgecache

go 1.22
