package lp

import "math"

// run executes phase 1 (drive artificials to zero) and phase 2 (optimize
// the real objective) and returns the solve status.
func (s *standard) run() Status {
	if s.m == 0 {
		// No constraints: the optimum is at the bounds. Every standard
		// column is z ≥ 0 with cost c; a negative cost means unbounded
		// unless the column came from a finite-range variable, in which
		// case an upper-bound row would exist (m > 0). So any negative
		// cost here is genuinely unbounded.
		for j := 0; j < s.n; j++ {
			if s.c[j] < -costEps {
				return Unbounded
			}
		}
		return Optimal
	}

	nTotal := s.n + s.nArt

	// Phase 1: minimize the sum of artificial variables.
	if s.nArt > 0 {
		phase1Cost := make([]float64, nTotal)
		for j := s.n; j < nTotal; j++ {
			phase1Cost[j] = 1
		}
		cRow, objVal := s.reducedCosts(phase1Cost)
		status := s.iterate(cRow, &objVal, nil)
		if status != Optimal {
			return status // IterLimit; phase 1 cannot be unbounded (cost ≥ 0)
		}
		if objVal > feasEps {
			return Infeasible
		}
		if !s.driveOutArtificials() {
			// Could not pivot an artificial out of a nonzero row; with a
			// zero phase-1 objective this only happens on redundant rows,
			// which driveOutArtificials handles, so reaching here means
			// numerical trouble.
			return IterLimit
		}
	}

	// Phase 2: minimize the real objective, with artificials banned.
	phase2Cost := make([]float64, nTotal)
	copy(phase2Cost, s.c)
	banned := make([]bool, nTotal)
	for j := s.n; j < nTotal; j++ {
		banned[j] = true
	}
	cRow, objVal := s.reducedCosts(phase2Cost)
	status := s.iterate(cRow, &objVal, banned)
	if status == Optimal {
		s.finalCRow = cRow
	}
	return status
}

// extractDuals recovers the shadow price of each original constraint: the
// derivative of the optimal objective with respect to that constraint's
// RHS. The dual of standard row i is read from the reduced cost of its
// auxiliary column (r_aux = c_aux − y_std·a_aux with c_aux = 0, so
// y_std = −r_aux/a_aux), then adjusted for row negation and for the
// original problem sense.
func (s *standard) extractDuals(numCons int) []float64 {
	if s.finalCRow == nil {
		// No phase-2 pivoting happened (m == 0): all duals are zero and
		// there are no constraints anyway.
		return make([]float64, numCons)
	}
	duals := make([]float64, numCons)
	for i := 0; i < numCons && i < len(s.rowAux); i++ {
		aux := s.rowAux[i]
		y := -s.finalCRow[aux.col] / aux.coef
		if aux.negated {
			y = -y
		}
		if s.maximize {
			y = -y
		}
		duals[i] = y
	}
	return duals
}

// reducedCosts computes the reduced-cost row c_j − c_B·B⁻¹A_j and the
// current objective value c_B·b for the given cost vector, directly from
// the (already pivoted) tableau.
func (s *standard) reducedCosts(cost []float64) ([]float64, float64) {
	nTotal := s.n + s.nArt
	cRow := make([]float64, nTotal)
	copy(cRow, cost)
	objVal := 0.0
	for i := 0; i < s.m; i++ {
		cb := cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		objVal += cb * s.b[i]
		row := s.a[i]
		for j := 0; j < nTotal; j++ {
			cRow[j] -= cb * row[j]
		}
	}
	// Basic columns have exactly zero reduced cost by construction; snap
	// them to avoid noise-driven re-entry.
	for _, j := range s.basis {
		cRow[j] = 0
	}
	return cRow, objVal
}

// iterate runs primal simplex pivots until optimality, unboundedness or the
// iteration budget. It mutates the tableau, basis, cRow and objVal in
// place. banned columns (artificials in phase 2) never enter the basis.
// Dantzig's rule is used first; after half the budget it switches to
// Bland's rule, which guarantees termination on degenerate problems.
func (s *standard) iterate(cRow []float64, objVal *float64, banned []bool) Status {
	nTotal := s.n + s.nArt
	for iter := 0; iter < s.maxIter; iter++ {
		bland := iter > s.maxIter/2

		// Choose the entering column.
		enter := -1
		best := -costEps
		for j := 0; j < nTotal; j++ {
			if banned != nil && banned[j] {
				continue
			}
			if cRow[j] < best {
				if bland {
					enter = j
					break
				}
				best = cRow[j]
				enter = j
			}
		}
		if enter == -1 {
			return Optimal
		}

		// Ratio test: choose the leaving row.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < s.m; i++ {
			aie := s.a[i][enter]
			if aie <= pivotEps {
				continue
			}
			ratio := s.b[i] / aie
			if ratio < bestRatio-pivotEps ||
				(ratio < bestRatio+pivotEps && (leave == -1 || s.basis[i] < s.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave == -1 {
			return Unbounded
		}

		s.pivot(leave, enter, cRow, objVal)
	}
	return IterLimit
}

// pivot performs a full tableau pivot on (row, col) and updates the reduced
// cost row and objective value.
func (s *standard) pivot(row, col int, cRow []float64, objVal *float64) {
	nTotal := s.n + s.nArt
	prow := s.a[row]
	inv := 1 / prow[col]
	for j := 0; j < nTotal; j++ {
		prow[j] *= inv
	}
	prow[col] = 1 // exact
	s.b[row] *= inv

	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		factor := s.a[i][col]
		if factor == 0 {
			continue
		}
		target := s.a[i]
		for j := 0; j < nTotal; j++ {
			target[j] -= factor * prow[j]
		}
		target[col] = 0 // exact
		s.b[i] -= factor * s.b[row]
		if s.b[i] < 0 && s.b[i] > -pivotEps {
			s.b[i] = 0 // snap tiny negative residuals
		}
	}

	factor := cRow[col]
	if factor != 0 {
		for j := 0; j < nTotal; j++ {
			cRow[j] -= factor * prow[j]
		}
		cRow[col] = 0
		*objVal += factor * s.b[row] // cost row decreases by factor·b'
		// Note: objVal tracks c_B·b; after the basis change the objective
		// moved by factor·(new b[row]); sign folded into factor above.
	}
	s.basis[row] = col
}

// driveOutArtificials pivots basic artificial variables (necessarily at
// value ≈ 0 after a feasible phase 1) out of the basis. Rows that have no
// eligible pivot column are redundant constraints; their artificial stays
// basic at zero, which is harmless because phase 2 bans artificials from
// re-entering and the row's b is zero. Returns false only if a basic
// artificial has a significantly nonzero value, which indicates phase 1 did
// not actually reach feasibility.
func (s *standard) driveOutArtificials() bool {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.n {
			continue
		}
		if s.b[i] > feasEps {
			return false
		}
		pivotCol := -1
		for j := 0; j < s.n; j++ {
			if math.Abs(s.a[i][j]) > pivotEps {
				pivotCol = j
				break
			}
		}
		if pivotCol == -1 {
			continue // redundant row
		}
		// Pivot without a cost row (values are zero, objective unchanged).
		zero := make([]float64, s.n+s.nArt)
		var objVal float64
		s.pivot(i, pivotCol, zero, &objVal)
	}
	return true
}

// extract maps the basic solution back to the original variable space.
func (s *standard) extract(p *Problem) []float64 {
	zStd := make([]float64, s.nStruct)
	for i, j := range s.basis {
		if j < s.nStruct {
			zStd[j] = s.b[i]
		}
	}
	x := make([]float64, p.NumVars)
	for j := range x {
		x[j] = math.NaN() // filled below; NaN would indicate a mapping bug
	}
	seen := make([]bool, p.NumVars)
	for cidx, col := range s.cols {
		v := col.shift + col.sign*zStd[cidx]
		if seen[col.varIdx] {
			// Second column of a split free variable: combine.
			x[col.varIdx] += col.sign * zStd[cidx]
			continue
		}
		x[col.varIdx] = v
		seen[col.varIdx] = true
	}
	// Clamp round-off against the declared bounds.
	for j := range x {
		lo, hi := p.lower(j), p.upper(j)
		if x[j] < lo {
			x[j] = lo
		}
		if x[j] > hi {
			x[j] = hi
		}
	}
	return x
}
