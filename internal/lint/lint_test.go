package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgecache/internal/lint"
	"edgecache/internal/lint/linttest"
)

// TestAnalyzers runs each analyzer over its fixture package and matches
// the reported diagnostics against the fixtures' // want comments: one
// true-positive set and one annotated-clean set per analyzer.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name      string
		analyzers string
		pattern   string
	}{
		{"noalloc", "noalloc", "./fixtures/noallocsrc"},
		{"determinism", "determinism", "./fixtures/determsrc"},
		{"floateq", "floateq", "./fixtures/floateqsrc"},
		{"flataccess", "flataccess", "./fixtures/flatsrc"},
		{"lockedsend", "lockedsend", "./fixtures/locksrc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			linttest.Check(t, ".", tc.analyzers, tc.pattern)
		})
	}
}

// TestRepoIsClean is the self-check the verify.sh gate relies on: the
// full suite over the whole module (fixtures skipped, as in the driver)
// must report nothing.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is not short")
	}
	prog, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range prog.Run(lint.Analyzers(), lint.DefaultSkip) {
		t.Errorf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// TestGateCatchesInjectedViolations demonstrates the acceptance criterion
// directly: dropping an allocating append into a //edgecache:noalloc
// function and a time.Now into internal/sim must fail the gate.
func TestGateCatchesInjectedViolations(t *testing.T) {
	tmp := t.TempDir()
	writeFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeFile(t, filepath.Join(tmp, "internal/sim/sim.go"), `package sim

import "time"

// Hot pretends to be a zero-alloc hot path but grows its input.
//
//edgecache:noalloc
func Hot(xs []int, x int) []int { return append(xs, x) }

// Stamp reads the wall clock inside the deterministic simulation layer.
func Stamp() int64 { return time.Now().UnixNano() }
`)
	prog, err := lint.Load(tmp, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(lint.Analyzers(), lint.DefaultSkip)
	assertDiag(t, diags, "noalloc", "append may allocate")
	assertDiag(t, diags, "determinism", "time.Now")
	if len(diags) != 2 {
		t.Errorf("want exactly 2 findings, got %d: %v", len(diags), diags)
	}
}

// TestDirectiveValidation covers the suppression machinery's failure
// modes: missing reason, unknown analyzer, and a stale suppression.
func TestDirectiveValidation(t *testing.T) {
	tmp := t.TempDir()
	writeFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeFile(t, filepath.Join(tmp, "internal/core/x.go"), `package core

// Reasonless suppresses without saying why.
func Reasonless(a, b float64) bool {
	//edgecache:lint-ignore floateq
	return a == b
}

// Typo names an analyzer that does not exist.
func Typo(a, b float64) bool {
	return a == b //edgecache:lint-ignore floateqq looks right at a glance
}

// Stale suppresses a line with nothing to suppress.
func Stale(a, b int) bool {
	return a == b //edgecache:lint-ignore floateq ints compare exactly anyway
}
`)
	prog, err := lint.Load(tmp, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(lint.Analyzers(), lint.DefaultSkip)
	assertDiag(t, diags, "directive", "gives no reason")
	assertDiag(t, diags, "directive", `unknown analyzer "floateqq"`)
	assertDiag(t, diags, "directive", "unused lint-ignore floateq")
	// The malformed directive does not suppress, so Reasonless's comparison
	// still fires; Typo's misnamed directive leaves its comparison exposed
	// too.
	floatDiags := 0
	for _, d := range diags {
		if d.Analyzer == "floateq" {
			floatDiags++
		}
	}
	if floatDiags != 2 {
		t.Errorf("want 2 surviving floateq findings, got %d: %v", floatDiags, diags)
	}
}

func assertDiag(t *testing.T, diags []lint.Diagnostic, analyzer, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("no %s diagnostic containing %q in %v", analyzer, substr, diags)
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
