package dp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Accountant tracks privacy-budget expenditure across the iterations of a
// distributed run. Each SBS records one Spend per noisy release; the
// accountant reports the sequential-composition total (the sum of the ε of
// every release over the same data) and the parallel-composition bound (the
// maximum ε per disjoint data partition — in the edge-caching model each
// SBS perturbs only its own routing policy, so spends recorded under
// different labels compose in parallel).
//
// The zero value is ready to use and safe for concurrent use.
type Accountant struct {
	mu     sync.Mutex
	spends []Spend
}

// Spend is one recorded privacy expenditure.
type Spend struct {
	// Label partitions spends for parallel composition; the distributed
	// runtime uses the SBS identifier.
	Label string
	// Epsilon is the budget consumed by the release.
	Epsilon float64
}

// Record notes one ε expenditure under a label. Non-positive ε is rejected:
// a release that consumed no budget should simply not be recorded.
func (a *Accountant) Record(label string, epsilon float64) error {
	if epsilon <= 0 {
		return fmt.Errorf("dp: recorded epsilon must be positive, got %v", epsilon)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spends = append(a.spends, Spend{Label: label, Epsilon: epsilon})
	return nil
}

// Count returns the number of recorded spends.
func (a *Accountant) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spends)
}

// SequentialEpsilon returns the sequential-composition total Σε over all
// spends — the guarantee when every release touches the same data.
func (a *Accountant) SequentialEpsilon() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total float64
	for _, s := range a.spends {
		total += s.Epsilon
	}
	return total
}

// ParallelEpsilon returns max over labels of the per-label sequential
// total — the guarantee when different labels perturb disjoint data.
func (a *Accountant) ParallelEpsilon() float64 {
	perLabel := a.ByLabel()
	var maxEps float64
	for _, eps := range perLabel {
		if eps > maxEps {
			maxEps = eps
		}
	}
	return maxEps
}

// ByLabel returns the sequential total per label.
func (a *Accountant) ByLabel() map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64)
	for _, s := range a.spends {
		out[s.Label] += s.Epsilon
	}
	return out
}

// Reset discards all recorded spends.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spends = nil
}

// AdvancedComposition returns the (ε_total, δ_total) guarantee for k
// releases of an (ε, δ)-DP mechanism over the same data under the
// advanced composition theorem (Dwork & Roth, Thm 3.20):
//
//	ε_total = ε·√(2k·ln(1/δ′)) + k·ε·(e^ε − 1),  δ_total = k·δ + δ′,
//
// for a chosen slack δ′ ∈ (0,1). For small ε and large k this beats the
// sequential total k·ε, which is why a long LPPM run's ledger overstates
// the worst case; the accountant exposes both views.
func AdvancedComposition(epsilon, delta float64, k int, deltaPrime float64) (float64, float64, error) {
	if epsilon <= 0 {
		return 0, 0, fmt.Errorf("dp: epsilon must be positive, got %v", epsilon)
	}
	if delta < 0 || delta >= 1 {
		return 0, 0, fmt.Errorf("dp: delta must be in [0,1), got %v", delta)
	}
	if k <= 0 {
		return 0, 0, fmt.Errorf("dp: k must be positive, got %d", k)
	}
	if deltaPrime <= 0 || deltaPrime >= 1 {
		return 0, 0, fmt.Errorf("dp: deltaPrime must be in (0,1), got %v", deltaPrime)
	}
	epsTotal := epsilon*math.Sqrt(2*float64(k)*math.Log(1/deltaPrime)) +
		float64(k)*epsilon*(math.Exp(epsilon)-1)
	return epsTotal, float64(k)*delta + deltaPrime, nil
}

// String renders a stable per-label summary, e.g. for the privacysweep
// example's report.
func (a *Accountant) String() string {
	byLabel := a.ByLabel()
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "accountant: %d spends, sequential ε=%.4g, parallel ε=%.4g",
		a.Count(), a.SequentialEpsilon(), a.ParallelEpsilon())
	for _, l := range labels {
		fmt.Fprintf(&b, "\n  %s: ε=%.4g", l, byLabel[l])
	}
	return b.String()
}
