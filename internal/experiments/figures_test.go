package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestDefaultScenarioBuild(t *testing.T) {
	inst, err := DefaultScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	if inst.N != 3 || inst.U != 30 || inst.F != 50 {
		t.Errorf("dimensions = %d/%d/%d, want 3/30/50", inst.N, inst.U, inst.F)
	}
	if got := inst.LinkCount(); got != 40 {
		t.Errorf("links = %d, want 40", got)
	}
	// TargetDemand calibration: total demand ≈ 4500.
	if total := inst.TotalDemand(); total < 4400 || total > 4600 {
		t.Errorf("total demand = %v, want ≈4500", total)
	}
	for n := 0; n < inst.N; n++ {
		if inst.CacheCap[n] != 10 || inst.Bandwidth[n] != 1000 {
			t.Errorf("SBS %d: cap=%d bw=%v", n, inst.CacheCap[n], inst.Bandwidth[n])
		}
	}
	for u := 0; u < inst.U; u++ {
		if inst.BSCost[u] < 100 || inst.BSCost[u] > 150 {
			t.Errorf("BSCost[%d] = %v outside [100,150]", u, inst.BSCost[u])
		}
		for n := 0; n < inst.N; n++ {
			if inst.EdgeCost[n][u] != 1 {
				t.Errorf("EdgeCost[%d][%d] = %v, want 1", n, u, inst.EdgeCost[n][u])
			}
		}
	}
}

func TestScenarioBuildErrors(t *testing.T) {
	sc := DefaultScenario()
	sc.SBSs = 0
	if _, err := sc.Build(); err == nil {
		t.Error("zero SBSs: want error")
	}
	sc = DefaultScenario()
	sc.TargetDemand = 0
	if _, err := sc.Build(); err == nil {
		t.Error("zero TargetDemand: want error")
	}
	sc = DefaultScenario()
	sc.LinkCount = 10 * 10 * 10
	if _, err := sc.Build(); err == nil {
		t.Error("too many links: want error")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, err := DefaultScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDemand() != b.TotalDemand() || a.LinkCount() != b.LinkCount() {
		t.Error("same seed built different instances")
	}
	sc := DefaultScenario()
	sc.Seed = 2
	c, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDemand() == c.TotalDemand() {
		t.Error("different seeds built identical demand")
	}
}

func TestFig2Table(t *testing.T) {
	h := DefaultHarness()
	tb, err := h.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 20 {
		t.Errorf("rows = %d, want 20", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "Fig. 2") {
		t.Error("missing title")
	}
}

// quickHarness is a cut-down harness for test speed: one seed, smaller
// catalog and fewer dual iterations.
func quickHarness() Harness {
	h := DefaultHarness()
	h.Seeds = []int64{1}
	h.Base.Videos = 20
	h.Base.Groups = 12
	h.Base.LinkCount = 16
	h.Base.CachePerSBS = 5
	h.Base.Bandwidth = 400
	h.Base.TargetDemand = 1800
	h.Sub.DualIters = 25
	return h
}

func TestFig3Quick(t *testing.T) {
	h := quickHarness()
	tb, err := h.Fig3([]float64{0.01, 100})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
	// Column order: epsilon, LPPM, Optimum, LRFU, gap.
	parse := func(row, col int) float64 {
		var v float64
		if _, err := fmtSscan(tb.Cell(row, col), &v); err != nil {
			t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Cell(row, col), err)
		}
		return v
	}
	lowEpsLPPM, highEpsLPPM := parse(0, 1), parse(1, 1)
	optimum := parse(0, 2)
	if lowEpsLPPM < optimum-1e-6 {
		t.Errorf("LPPM (%v) below optimum (%v)", lowEpsLPPM, optimum)
	}
	if highEpsLPPM > lowEpsLPPM+1e-6 {
		t.Errorf("cost at ε=100 (%v) should not exceed cost at ε=0.01 (%v)", highEpsLPPM, lowEpsLPPM)
	}
	// The optimum column is ε-independent.
	if parse(0, 2) != parse(1, 2) {
		t.Error("optimum varies with ε")
	}
}

func TestFig4Quick(t *testing.T) {
	h := quickHarness()
	tb, err := h.Fig4([]int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
}

func TestFig5Quick(t *testing.T) {
	h := quickHarness()
	tb, err := h.Fig5([]int{8, 30})
	if err != nil {
		t.Fatal(err)
	}
	// More links must not increase the optimum cost.
	var low, high float64
	if _, err := fmtSscan(tb.Cell(0, 2), &low); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tb.Cell(1, 2), &high); err != nil {
		t.Fatal(err)
	}
	if high > low+1e-6 {
		t.Errorf("optimum with 30 links (%v) exceeds optimum with 8 links (%v)", high, low)
	}
}

func TestFig6Quick(t *testing.T) {
	h := quickHarness()
	tb, err := h.Fig6([]float64{100, 1200})
	if err != nil {
		t.Fatal(err)
	}
	var low, high float64
	if _, err := fmtSscan(tb.Cell(0, 2), &low); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tb.Cell(1, 2), &high); err != nil {
		t.Fatal(err)
	}
	if high > low+1e-6 {
		t.Errorf("optimum at bandwidth 1200 (%v) exceeds optimum at 100 (%v)", high, low)
	}
}

func TestConvergenceTable(t *testing.T) {
	h := quickHarness()
	tb, err := h.Convergence()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() == 0 {
		t.Error("empty convergence table")
	}
}

func TestOptimalityGapTable(t *testing.T) {
	h := quickHarness()
	tb, err := h.OptimalityGap(2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
	for row := 0; row < tb.NumRows(); row++ {
		var gap float64
		if _, err := fmtSscan(tb.Cell(row, 3), &gap); err != nil {
			t.Fatal(err)
		}
		if gap < -1e-6 {
			t.Errorf("row %d: negative gap %v — distributed beat the exact optimum", row, gap)
		}
	}
}

// fmtSscan parses a rendered numeric cell.
func fmtSscan(s string, v *float64) (int, error) {
	parsed, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*v = parsed
	return 1, nil
}
