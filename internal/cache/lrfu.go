package cache

import (
	"fmt"
	"math"
)

// LRFU is Lee et al.'s Least Recently/Frequently Used policy, the paper's
// baseline cache-replacement scheme. Every cached content carries a
// Combined Recency and Frequency (CRF) value; a reference at time t updates
//
//	CRF ← 1 + CRF·2^(−λ·(t − tLast)),
//
// and the eviction victim is the content with the smallest
// time-t-normalized CRF. λ ∈ [0,1] interpolates the family: λ → 0
// approaches LFU (pure frequency), λ → 1 approaches LRU (pure recency).
//
// CRF values decayed to a common reference time differ only by the shared
// factor 2^(−λt), so victims are compared in the overflow-safe log domain:
// log2(CRF_i) + λ·tLast_i.
type LRFU struct {
	capacity int
	lambda   float64
	clock    float64
	items    map[int]*lrfuEntry
}

type lrfuEntry struct {
	crf      float64
	lastUsed float64
}

// NewLRFU returns an empty LRFU cache. Capacity must be non-negative and
// λ within [0,1].
func NewLRFU(capacity int, lambda float64) (*LRFU, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: capacity must be non-negative, got %d", capacity)
	}
	if lambda < 0 || lambda > 1 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("cache: lambda must be in [0,1], got %v", lambda)
	}
	return &LRFU{capacity: capacity, lambda: lambda, items: make(map[int]*lrfuEntry)}, nil
}

// Access implements Policy using the internal logical clock (one tick per
// reference). Use AccessAt to replay streams with explicit timestamps.
func (c *LRFU) Access(content int) bool {
	c.clock++
	return c.accessAt(content, c.clock)
}

// AccessAt records a reference at an explicit timestamp; timestamps must be
// non-decreasing across calls. It also advances the logical clock so Access
// and AccessAt can be mixed.
func (c *LRFU) AccessAt(content int, t float64) bool {
	if t > c.clock {
		c.clock = t
	}
	return c.accessAt(content, c.clock)
}

func (c *LRFU) accessAt(content int, t float64) bool {
	if e, ok := c.items[content]; ok {
		e.crf = 1 + e.crf*math.Exp2(-c.lambda*(t-e.lastUsed))
		e.lastUsed = t
		return true
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.items) >= c.capacity {
		victim := c.victim()
		delete(c.items, victim)
	}
	c.items[content] = &lrfuEntry{crf: 1, lastUsed: t}
	return false
}

// victim returns the content with the smallest normalized CRF.
func (c *LRFU) victim() int {
	victim := -1
	best := math.Inf(1)
	for k, e := range c.items {
		score := math.Log2(e.crf) + c.lambda*e.lastUsed
		if score < best || (score == best && k < victim) { //edgecache:lint-ignore floateq exact tie-break keeps eviction deterministic; near-equal CRFs must not alias
			best = score
			victim = k
		}
	}
	return victim
}

// CRF returns the content's CRF decayed to the current clock, or 0 if the
// content is not cached. Exposed for tests and for the ablation benchmarks
// that inspect ranking behaviour.
func (c *LRFU) CRF(content int) float64 {
	e, ok := c.items[content]
	if !ok {
		return 0
	}
	return e.crf * math.Exp2(-c.lambda*(c.clock-e.lastUsed))
}

// Contains implements Policy.
func (c *LRFU) Contains(content int) bool { _, ok := c.items[content]; return ok }

// Contents implements Policy.
func (c *LRFU) Contents() []int { return sortedKeys(c.items) }

// Len implements Policy.
func (c *LRFU) Len() int { return len(c.items) }

// Cap implements Policy.
func (c *LRFU) Cap() int { return c.capacity }

// Name implements Policy.
func (c *LRFU) Name() string { return "LRFU" }
