package soak

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"

	"edgecache/internal/chaos"
	"edgecache/internal/cluster"
	"edgecache/internal/model"
)

// Cluster episode shape: small on purpose. Each supervised run spawns
// (1 BS + SBSs) OS processes per cell, and ddmin re-executes the whole
// cluster per probe, so the soak keeps the process count low and the
// sweep budget high enough that mid-run faults have a window to fire in.
const (
	clusterCells     = 2
	clusterCellSBSs  = 2
	clusterMaxSweeps = 8
)

// clusterSpec is the supervised-run tuning for soak episodes: a Gamma far
// below float resolution so runs spend their whole sweep budget (the small
// instances would otherwise hit a fixed point before any fault fires), and
// liveness timeouts generous enough that a loaded -race host cannot
// produce false heartbeat kills.
func clusterSpec(seed int64) model.ClusterSpec {
	spec := model.ClusterSpec{
		Gamma:           1e-12,
		MaxSweeps:       clusterMaxSweeps,
		PhaseTimeoutMS:  8000,
		HeartbeatMS:     20,
		HeartbeatMisses: 250,
	}
	for i := 0; i < clusterCells; i++ {
		spec.Cells = append(spec.Cells, model.ClusterCell{
			Name: fmt.Sprintf("cell-%d", i),
			SBSs: clusterCellSBSs,
			Seed: seed + int64(i),
		})
	}
	return spec
}

// clusterInstance builds a small instance with deliberately tight
// bandwidth so the cell stays coupled across several sweeps — the
// experiments scenario's looser instances converge in two sweeps, before
// any scheduled process fault could trigger.
func clusterInstance(sbss int, seed int64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	const u, f = 5, 6
	inst := &model.Instance{
		N: sbss, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, sbss),
		CacheCap:  make([]int, sbss),
		Bandwidth: make([]float64, sbss),
		EdgeCost:  make([][]float64, sbss),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < sbss; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1 + rng.Float64()*3
		}
		inst.CacheCap[i] = 1 + rng.Intn(f/2+1)
		inst.Bandwidth[i] = 5 + rng.Float64()*40
	}
	return inst
}

// runClusterEpisodes appends ClusterEpisodes supervised multi-process
// episodes to the soak, stopping at (and shrinking) the first failure.
func (r *soakRun) runClusterEpisodes(ctx context.Context) error {
	for i := 0; i < r.cfg.ClusterEpisodes; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Seeds continue past the in-process episodes so the two modes
		// never share fault schedules.
		seed := r.episodeSeed(r.cfg.Episodes + i)
		spec := clusterSpec(seed)
		insts := make([]*model.Instance, len(spec.Cells))
		cells := make([]chaos.ProcCell, len(spec.Cells))
		for c, cell := range spec.Cells {
			insts[c] = clusterInstance(cell.SBSs, cell.Seed)
			cells[c] = chaos.ProcCell{Name: cell.Name, SBSs: cell.SBSs}
		}
		procs, err := chaos.RandomProcSchedule(chaos.RandomProcScheduleConfig{
			Seed:  seed,
			Cells: cells,
		})
		if err != nil {
			return fmt.Errorf("soak: cluster episode %d: %w", i, err)
		}
		violations := r.executeCluster(ctx, spec, insts, procs)
		if len(violations) > 0 {
			r.logf("cluster episode %d FAILED: %v (proc schedule %s)", i, violations, procs.Spec())
			failure, err := r.shrinkCluster(ctx, i, seed, spec, insts, procs, violations)
			if err != nil {
				return err
			}
			r.res.Failure = failure
			return nil
		}
		r.res.ClusterEpisodes++
		r.logf("cluster episode %d ok (seed %d, %d proc events)", i, seed, len(procs.Events))
	}
	return nil
}

// executeCluster runs one supervised cluster under the given process-fault
// schedule and checks the cluster invariants: the run itself succeeds,
// every cell completes, and every cell converges. (Bit-identity vs the
// in-process reference only holds fault-free, so it is not asserted here;
// the cluster suite's own tests pin it.)
func (r *soakRun) executeCluster(ctx context.Context, spec model.ClusterSpec,
	insts []*model.Instance, procs chaos.ProcSchedule) []Violation {
	runDir, err := os.MkdirTemp("", "soak-cluster-")
	if err != nil {
		return []Violation{{"cluster-run-error", fmt.Sprintf("run dir: %v", err)}}
	}
	defer os.RemoveAll(runDir)

	var logBuf bytes.Buffer
	sup, err := cluster.NewSupervisor(cluster.Config{
		Spec:      spec,
		Instances: insts,
		Command:   r.cfg.Command,
		RunDir:    runDir,
		Proc:      procs,
		Log:       &logBuf,
	})
	if err != nil {
		return []Violation{{"cluster-run-error", fmt.Sprintf("supervisor: %v", err)}}
	}
	res, runErr := sup.Run(ctx)
	if runErr != nil {
		return []Violation{{"cluster-run-error",
			fmt.Sprintf("%v\nsupervisor log:\n%s", runErr, logBuf.String())}}
	}
	var violations []Violation
	for _, cell := range res.Cells {
		if !cell.Completed || cell.Result == nil {
			violations = append(violations, Violation{"cluster-completed",
				fmt.Sprintf("cell %s did not complete: %s", cell.Name, cell.Failure)})
			continue
		}
		if !cell.Result.Converged {
			violations = append(violations, Violation{"cluster-converged",
				fmt.Sprintf("cell %s did not converge in %d sweeps", cell.Name, cell.Result.Sweeps)})
		}
	}
	return violations
}

// shrinkCluster ddmin-minimizes a failing process-fault schedule. Each
// probe is a full supervised re-run, so the ShrinkRuns budget matters far
// more here than in-process.
func (r *soakRun) shrinkCluster(ctx context.Context, episode int, seed int64,
	spec model.ClusterSpec, insts []*model.Instance,
	procs chaos.ProcSchedule, violations []Violation) (*Failure, error) {
	failure := &Failure{
		Episode:    episode,
		Seed:       seed,
		Violations: violations,
		Proc:       procs,
		MinProc:    procs,
		Cluster:    true,
	}
	want := map[string]bool{}
	for _, v := range violations {
		want[v.Invariant] = true
	}
	runs := 0
	interesting := func(events []chaos.ProcEvent) bool {
		if runs >= r.cfg.ShrinkRuns || ctx.Err() != nil {
			return false
		}
		runs++
		cand := chaos.ProcSchedule{Events: events}
		for _, v := range r.executeCluster(ctx, spec, insts, cand) {
			if want[v.Invariant] {
				return true
			}
		}
		return false
	}
	minEvents := ddmin(procs.Events, interesting)
	failure.ShrinkRuns = runs
	failure.MinProc = chaos.ProcSchedule{Events: minEvents}
	r.logf("cluster shrink: %d events -> %d (%d re-runs)", len(procs.Events), len(minEvents), runs)

	path, err := r.writeRepro(failure)
	if err != nil {
		return nil, err
	}
	failure.ReproPath = path
	return failure, nil
}
