// Package privflowsrc holds deliberate privacy-taint violations and the
// sanitized shapes the privflow analyzer approves. The edgelint driver
// skips everything under internal/lint/fixtures.
package privflowsrc

import (
	"context"
	"log"
	"math/rand"

	"edgecache/internal/dp"
	"edgecache/internal/model"
	"edgecache/internal/transport"
)

// Response mimics a per-BS best-response result carrying raw pre-LPPM
// routing shares.
type Response struct {
	Cost float64
	// Shares are the raw per-MU routing shares before any LPPM noise.
	//
	//edgecache:private raw pre-LPPM per-MU routing shares
	Shares []float64
}

// RawDemand mimics an accessor whose results reveal per-MU request counts.
//
//edgecache:private raw per-MU demand counts
func RawDemand() []float64 { return []float64{1, 2} }

// BadDirectSend ships raw shares over the wire: the taint survives the
// gob encoding inside transport.EncodePayload.
func BadDirectSend(ctx context.Context, ep transport.Endpoint, r *Response) error {
	payload, err := transport.EncodePayload(r.Shares)
	if err != nil {
		return err
	}
	return ep.Send(ctx, "peer", transport.Message{Payload: payload}) // want `private data reaches transport send`
}

// GoodSanitizedSend is the approved shape: every share passes the LPPM
// mechanism before egress, and the strong update leaves the slice clean.
func GoodSanitizedSend(ctx context.Context, ep transport.Endpoint, rng *rand.Rand, r *Response) error {
	noisy := make([]float64, len(r.Shares))
	for i := range noisy {
		v, err := dp.LPPMNoise(rng, r.Shares[i], 0.1, 4)
		if err != nil {
			return err
		}
		noisy[i] = v
	}
	payload, err := transport.EncodePayload(noisy)
	if err != nil {
		return err
	}
	return ep.Send(ctx, "peer", transport.Message{Payload: payload})
}

// GoodStrongUpdate reuses one variable: the sanitizer's result overwrites
// the raw value, so the later log is clean ("last writer wins").
func GoodStrongUpdate(rng *rand.Rand, r *Response) error {
	share := r.Shares[0]
	share, err := dp.LPPMNoise(rng, share, 0.1, 4)
	if err != nil {
		return err
	}
	log.Printf("noised share: %v", share)
	return nil
}

// BadLog leaks raw demand through the process log.
func BadLog() {
	log.Printf("demand: %v", RawDemand()) // want `private data reaches log output`
}

// BadCheckpoint builds a checkpoint from raw values: the write through
// ck's field taints the whole locally-built checkpoint (weak update).
func BadCheckpoint(sink model.CheckpointSink) error {
	ck := &model.Checkpoint{Mu: make([][]float64, 1)}
	ck.Mu[0] = RawDemand()
	return sink.Save(ck) // want `private data reaches checkpoint save`
}

// relay forwards its payload to the wire. The summary records that the
// payload parameter reaches a transport send, so tainted callers are
// flagged at their call site, not here.
func relay(ctx context.Context, ep transport.Endpoint, payload []byte) error {
	return ep.Send(ctx, "peer", transport.Message{Payload: payload})
}

// BadViaHelper reaches the sink one call deep.
func BadViaHelper(ctx context.Context, ep transport.Endpoint) error {
	payload, err := transport.EncodePayload(RawDemand())
	if err != nil {
		return err
	}
	return relay(ctx, ep, payload) // want `private data reaches transport send via relay`
}
