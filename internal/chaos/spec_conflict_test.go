package chaos

import (
	"errors"
	"testing"
	"time"
)

// TestParseSpecConflicts exercises the per-target ordering discipline:
// duplicate trigger points and time-unordered directives for one target
// are rejected with a *SpecConflictError, while interleaved events on
// different targets remain legal in any written order.
func TestParseSpecConflicts(t *testing.T) {
	cases := []struct {
		name      string
		spec      string
		duplicate bool // expected SpecConflictError.Duplicate
		ok        bool // spec is valid, no conflict expected
	}{
		{name: "duplicate crash", spec: "crash=1@2,crash=1@2", duplicate: true},
		{name: "crash shadows generated restart", spec: "crash=1@2+3,crash=1@5", duplicate: true},
		{name: "backwards for same target", spec: "crash=1@5,crash=1@2"},
		{name: "partition jumps back over crash", spec: "crash=0@4,partition=0@1"},
		{name: "duplicate bscrash", spec: "bscrash=2,bscrash=2", duplicate: true},
		{name: "bsrestart before bscrash", spec: "bscrash=4,bsrestart=1"},
		{name: "bsrestart repeats generated restart", spec: "bscrash=2+1,bsrestart=3", duplicate: true},
		{name: "distinct targets interleave freely", spec: "crash=1@5,crash=0@1,bscrash=2", ok: true},
		{name: "same target strictly increasing", spec: "crash=1@1+1,partition=1@3", ok: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.spec)
			if tc.ok {
				if err != nil {
					t.Fatalf("ParseSpec(%q) = %v, want nil", tc.spec, err)
				}
				return
			}
			var conflict *SpecConflictError
			if !errors.As(err, &conflict) {
				t.Fatalf("ParseSpec(%q) = %v, want *SpecConflictError", tc.spec, err)
			}
			if conflict.Duplicate != tc.duplicate {
				t.Errorf("Duplicate = %v, want %v (%v)", conflict.Duplicate, tc.duplicate, conflict)
			}
			if conflict.Error() == "" || conflict.Prev == nil || conflict.Next == nil {
				t.Errorf("conflict does not name both events: %+v", conflict)
			}
		})
	}
}

// TestParseProcSpec covers the -proc-chaos directive grammar: every
// operation form round-trips into the expected ProcEvent, and malformed
// directives are rejected.
func TestParseProcSpec(t *testing.T) {
	s, err := ParseProcSpec("kill=cell-1@2, stop=cell-0@1+100ms,kill=cell-0.2@3,spawndelay=cell-2.1@250ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []ProcEvent{
		{Cell: "cell-1", SBS: -1, Op: ProcKill, Sweep: 2},
		{Cell: "cell-0", SBS: -1, Op: ProcStop, Sweep: 1, Delay: 100 * time.Millisecond},
		{Cell: "cell-0", SBS: 2, Op: ProcKill, Sweep: 3},
		{Cell: "cell-2", SBS: 1, Op: ProcSpawnDelay, Delay: 250 * time.Millisecond},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("events = %v, want %v", s.Events, want)
	}
	for i := range want {
		if s.Events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], want[i])
		}
	}
	if s, err := ParseProcSpec(" "); err != nil || len(s.Events) != 0 {
		t.Errorf("blank spec: %v, %v", s, err)
	}
	for _, bad := range []string{
		"kill", "melt=cell-0@1", "kill=cell-0", "kill=@1", "kill=cell-0@x",
		"kill=cell-0@-1", "kill=cell-0.x@1", "kill=cell-0.-1@1",
		"stop=cell-0@1", "stop=cell-0@1+0s", "stop=cell-0@1+zzz",
		"spawndelay=cell-0", "spawndelay=cell-0@-5ms", "spawndelay=cell-0@soon",
	} {
		if _, err := ParseProcSpec(bad); err == nil {
			t.Errorf("ParseProcSpec(%q) accepted invalid spec", bad)
		}
	}
}

// TestParseProcSpecConflicts mirrors TestParseSpecConflicts for the
// process-fault grammar: per-target protocol-time order is enforced, and
// a target may carry at most one spawn delay. The BS and an SBS of the
// same cell are distinct targets.
func TestParseProcSpecConflicts(t *testing.T) {
	cases := []struct {
		name      string
		spec      string
		duplicate bool
		ok        bool
	}{
		{name: "duplicate kill", spec: "kill=cell-0@2,kill=cell-0@2", duplicate: true},
		{name: "stop repeats kill sweep", spec: "kill=cell-0@2,stop=cell-0@2+50ms", duplicate: true},
		{name: "kill jumps back", spec: "kill=cell-0@4,kill=cell-0@1"},
		{name: "second spawn delay for one target", spec: "spawndelay=cell-0@10ms,spawndelay=cell-0@20ms", duplicate: true},
		{name: "bs and sbs are distinct targets", spec: "kill=cell-0@2,kill=cell-0.0@2", ok: true},
		{name: "spawn delay is not protocol time", spec: "kill=cell-0@2,spawndelay=cell-0@10ms,kill=cell-0@4", ok: true},
		{name: "same target increasing", spec: "stop=cell-0.1@1+10ms,kill=cell-0.1@3", ok: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProcSpec(tc.spec)
			if tc.ok {
				if err != nil {
					t.Fatalf("ParseProcSpec(%q) = %v, want nil", tc.spec, err)
				}
				return
			}
			var conflict *SpecConflictError
			if !errors.As(err, &conflict) {
				t.Fatalf("ParseProcSpec(%q) = %v, want *SpecConflictError", tc.spec, err)
			}
			if conflict.Duplicate != tc.duplicate {
				t.Errorf("Duplicate = %v, want %v (%v)", conflict.Duplicate, tc.duplicate, conflict)
			}
		})
	}
}
