package cache_test

import (
	"fmt"
	"log"

	"edgecache/internal/cache"
	"edgecache/internal/trace"
)

// Example shows the shared Policy interface with the paper's LRFU.
func Example() {
	lrfu, err := cache.NewLRFU(2, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hit:", lrfu.Access(1)) // cold miss, admitted
	fmt.Println("hit:", lrfu.Access(1)) // now cached
	lrfu.Access(2)
	lrfu.Access(3) // capacity 2: someone is evicted
	fmt.Println("cached:", lrfu.Contents())
	// Output:
	// hit: false
	// hit: true
	// cached: [1 3]
}

// ExampleMissRatioCurve sizes a cache against a reference stream: with
// capacity for the whole 3-content working set only the cold misses
// remain.
func ExampleMissRatioCurve() {
	var stream []trace.Request
	for i := 0; i < 9; i++ {
		stream = append(stream, trace.Request{Time: float64(i), Content: i % 3})
	}
	curve, err := cache.MissRatioCurve("LRU", 0, []int{1, 3}, stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity 1: %.2f miss ratio\n", curve[0])
	fmt.Printf("capacity 3: %.2f miss ratio\n", curve[1])
	// Output:
	// capacity 1: 1.00 miss ratio
	// capacity 3: 0.33 miss ratio
}
