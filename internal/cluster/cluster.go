// Package cluster runs the distributed protocol as a federation of real OS
// processes: one supervisor process launches, per cell, a BS coordinator
// and its SBS agents (each an `edgesim -role bs|sbs` sub-entrypoint of the
// same binary), wires them over the TCP transport, and supervises them —
// liveness via heartbeat deadlines, crash recovery via restart with
// exponential backoff (a restarted BS rehydrates from its CheckpointStore
// and re-attaches live SBSs through the MsgStateSync handshake), and
// escalation once a process exhausts its restart budget (an SBS is left
// permanently down for the BS's quarantine machinery to absorb; a BS takes
// its cell down, gracefully degrading the cluster).
//
// This is the deployment story of the paper's §III made literal: SBSs
// owned by different operators share nothing but protocol messages, and
// the durability PRs demonstrated in-process (quarantine, checkpointed
// resume) is demonstrated here against actual process death — SIGKILL,
// SIGSTOP freezes and delayed spawns scheduled at protocol time through
// internal/chaos's process-fault directives. On the fault-free path the
// cluster's per-cell trajectories are bit-for-bit identical to the
// in-process core.Coordinator, which the acceptance tests assert.
//
// Supervisor and supervisee talk a deliberately tiny line protocol: the
// agent prints "ADDR <addr>" once its listener is bound, "HB <sweep>
// <phase>" on a fixed heartbeat cadence and immediately on every sweep
// transition (that is how protocol time reaches the supervisor's fault
// scheduler), and "DONE" when its run finished; the supervisor feeds each
// agent newline-delimited JSON peer lists on stdin — the first one starts
// the agent, later ones re-announce peers after restarts. Everything else
// (instances, checkpoints, results) moves through files in the run
// directory, laid out one subdirectory per cell.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Role distinguishes the two agent kinds of a cell.
type Role int

// Agent roles.
const (
	// RoleBS is the cell's coordinator (one per cell).
	RoleBS Role = iota
	// RoleSBS is one sub-problem solver (CellSpec.SBSs per cell).
	RoleSBS
)

// String names the role as spelled on the agent command line.
func (r Role) String() string {
	if r == RoleBS {
		return "bs"
	}
	return "sbs"
}

// ParseRole parses an agent -role value.
func ParseRole(s string) (Role, error) {
	switch s {
	case "bs":
		return RoleBS, nil
	case "sbs":
		return RoleSBS, nil
	default:
		return 0, fmt.Errorf("cluster: unknown role %q (want bs or sbs)", s)
	}
}

// Endpoint names within one cell. Cells are isolated TCP islands, so the
// names repeat across cells without ambiguity.
const bsName = "bs"

func sbsEndpointName(i int) string { return fmt.Sprintf("sbs-%d", i) }

// Line protocol between agent stdout and supervisor. Each message is one
// newline-terminated line.
const (
	lineAddr = "ADDR" // ADDR <listen-addr>      — listener bound
	lineHB   = "HB"   // HB <sweep> <phase>      — heartbeat + protocol time
	lineDone = "DONE" // DONE                    — run finished cleanly
)

// PeerAddr is one entry of the peer list the supervisor writes to an
// agent's stdin.
type PeerAddr struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// PeerList is the newline-delimited JSON stdin message carrying peer
// addresses. The first list starts the agent; later lists (sent after a
// peer restarted or a delayed peer finally spawned) update the address
// book in place.
type PeerList struct {
	Peers []PeerAddr `json:"peers"`
}

// AgentResult is the cell outcome the BS agent writes as result.json
// before printing DONE. History uses JSON's shortest round-trip float
// encoding, so the recorded trajectory is bit-exact — the acceptance tests
// compare it against the in-process reference with float64 equality.
type AgentResult struct {
	Converged   bool      `json:"converged"`
	Sweeps      int       `json:"sweeps"`
	CostTotal   float64   `json:"cost_total"`
	History     []float64 `json:"history"`
	Misses      int       `json:"misses,omitempty"`
	Quarantines int       `json:"quarantines,omitempty"`
}

// writeResultFile persists the result atomically (temp + rename), so the
// supervisor — which reads it only after the clean exit that follows —
// never sees a torn file even if the agent dies mid-write.
func writeResultFile(path string, res *AgentResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadResultFile loads a BS agent's result.json.
func ReadResultFile(path string) (*AgentResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res AgentResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("cluster: decode %s: %w", path, err)
	}
	return &res, nil
}

// parseLine splits one agent stdout line into its protocol parts.
// ok=false means the line is not a protocol message (agents keep stdout
// clean, but a foreign Command prefix might not).
func parseLine(line string) (kind string, sweep, phase int, addr string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", 0, 0, "", false
	}
	switch fields[0] {
	case lineAddr:
		if len(fields) != 2 {
			return "", 0, 0, "", false
		}
		return lineAddr, 0, 0, fields[1], true
	case lineHB:
		if len(fields) != 3 {
			return "", 0, 0, "", false
		}
		s, err1 := strconv.Atoi(fields[1])
		p, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return "", 0, 0, "", false
		}
		return lineHB, s, p, "", true
	case lineDone:
		return lineDone, 0, 0, "", true
	}
	return "", 0, 0, "", false
}

// formatFloat renders a float64 for an agent flag with exact round-trip.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// formatDuration renders a duration for an agent flag.
func formatDuration(d time.Duration) string { return d.String() }

// readPeerList decodes one peer-list line.
func readPeerList(line []byte) (*PeerList, error) {
	var pl PeerList
	if err := json.Unmarshal(line, &pl); err != nil {
		return nil, fmt.Errorf("cluster: decode peer list: %w", err)
	}
	return &pl, nil
}

// encodePeerList renders a peer list as one stdin line.
func encodePeerList(pl *PeerList) ([]byte, error) {
	data, err := json.Marshal(pl)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode peer list: %w", err)
	}
	return append(data, '\n'), nil
}
