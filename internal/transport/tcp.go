package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// maxFrameSize bounds inbound frames (16 MiB); a malformed or hostile
// length prefix must not drive an allocation of arbitrary size.
const maxFrameSize = 16 << 20

// TCPEndpoint is an Endpoint over TCP with length-prefixed gob frames.
// Each endpoint listens on one address; outbound connections are dialed
// lazily per peer and kept open. Peers are registered with AddPeer.
type TCPEndpoint struct {
	name  string
	ln    net.Listener
	inbox chan Message

	mu      sync.Mutex
	closed  bool
	peers   map[string]string
	conns   map[string]*tcpConn
	inbound map[net.Conn]struct{}
	redial  RetryPolicy
	rng     *rand.Rand

	wg sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// tcpConn serializes writes to one outbound connection.
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewTCPEndpoint listens on listenAddr (use "127.0.0.1:0" for an ephemeral
// port) and starts accepting inbound frames.
func NewTCPEndpoint(name, listenAddr string) (*TCPEndpoint, error) {
	if name == "" {
		return nil, fmt.Errorf("transport: endpoint name must be non-empty")
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	e := &TCPEndpoint{
		name:    name,
		ln:      ln,
		inbox:   make(chan Message, 64),
		peers:   make(map[string]string),
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
		redial:  defaultRedialPolicy(),
		rng:     rand.New(rand.NewSource(1)),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// defaultRedialPolicy keeps Send's worst case short: three attempts with
// 5ms→20ms backoff covers a peer restart without stalling the caller for
// longer than a protocol phase sub-window.
func defaultRedialPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}.withDefaults()
}

// SetRedialPolicy replaces the redial-with-backoff schedule used by Send
// when a cached connection turns out to be dead or a dial fails (zero
// value restores the default). Call before the endpoint is shared.
func (e *TCPEndpoint) SetRedialPolicy(p RetryPolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	e.redial = p.withDefaults()
	e.rng = rand.New(rand.NewSource(p.Seed))
	e.mu.Unlock()
	return nil
}

// Name implements Endpoint.
func (e *TCPEndpoint) Name() string { return e.name }

// Addr returns the actual listening address, e.g. to distribute to peers
// after an ephemeral-port bind.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// AddPeer registers the address of a named peer.
func (e *TCPEndpoint) AddPeer(name, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[name] = addr
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	for {
		msg, err := readFrame(conn)
		if err != nil {
			return
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		select {
		case e.inbox <- msg:
		default:
			// Inbox overflow: drop the frame. The protocol tolerates loss
			// (the BS re-announces each phase; see the failure tests).
		}
	}
}

// Send implements Endpoint. A dead cached connection or a failed dial is
// retried under the endpoint's redial policy (exponential backoff with
// jitter), which rides out a peer restart mid-run; the at-most-once
// delivery contract is unchanged because a successful write is never
// repeated. Send returns the last error once the attempts are exhausted,
// and returns immediately on context cancellation or endpoint close.
func (e *TCPEndpoint) Send(ctx context.Context, to string, m Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	addr, ok := e.peers[to]
	policy := e.redial
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	m.From = e.name
	m.To = to

	frame, err := encodeFrame(m)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			e.mu.Lock()
			d := policy.delay(attempt-1, e.rng)
			e.mu.Unlock()
			if err := sleepCtx(ctx, d); err != nil {
				return err
			}
		}
		tc, err := e.connTo(ctx, to, addr, attempt > 0)
		if err != nil {
			if errors.Is(err, ErrClosed) || ctx.Err() != nil {
				return err
			}
			lastErr = err
			continue
		}
		tc.mu.Lock()
		_, werr := tc.conn.Write(frame)
		tc.mu.Unlock()
		if werr == nil {
			return nil
		}
		e.dropConn(to, tc)
		lastErr = fmt.Errorf("transport: send to %q: %w", to, werr)
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return ErrClosed
		}
	}
	return lastErr
}

// connTo returns the cached connection to a peer, dialing when absent or
// when refresh is set.
func (e *TCPEndpoint) connTo(ctx context.Context, name, addr string, refresh bool) (*tcpConn, error) {
	e.mu.Lock()
	if !refresh {
		if tc, ok := e.conns[name]; ok {
			e.mu.Unlock()
			return tc, nil
		}
	}
	e.mu.Unlock()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q (%s): %w", name, addr, err)
	}
	tc := &tcpConn{conn: conn}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if old, ok := e.conns[name]; ok && !refresh {
		// Lost a dial race; keep the existing connection.
		e.mu.Unlock()
		conn.Close()
		return old, nil
	}
	e.conns[name] = tc
	e.mu.Unlock()
	return tc, nil
}

func (e *TCPEndpoint) dropConn(name string, tc *tcpConn) {
	e.mu.Lock()
	if e.conns[name] == tc {
		delete(e.conns, name)
	}
	e.mu.Unlock()
	tc.conn.Close()
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv(ctx context.Context) (Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	e.mu.Unlock()
	select {
	case m := <-e.inbox:
		return m, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close implements Endpoint: stops the listener, closes all connections
// and waits for the reader goroutines to exit.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = make(map[string]*tcpConn)
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()

	err := e.ln.Close()
	for _, tc := range conns {
		tc.conn.Close()
	}
	// Inbound connections must be closed too: their read loops would
	// otherwise block until the remote side closes, and Close would
	// deadlock waiting for them (two endpoints closing in sequence would
	// wait on each other).
	for _, c := range inbound {
		c.Close()
	}
	e.wg.Wait()
	return err
}

// encodeFrame renders a message as a length-prefixed gob frame.
func encodeFrame(m Message) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(m); err != nil {
		return nil, fmt.Errorf("transport: encode frame: %w", err)
	}
	if body.Len() > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", body.Len(), maxFrameSize)
	}
	frame := make([]byte, 4+body.Len())
	binary.BigEndian.PutUint32(frame[:4], uint32(body.Len()))
	copy(frame[4:], body.Bytes())
	return frame, nil
}

// readFrame reads one length-prefixed gob frame.
func readFrame(r io.Reader) (Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return Message{}, err
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > maxFrameSize {
		return Message{}, fmt.Errorf("transport: inbound frame of %d bytes exceeds limit %d", size, maxFrameSize)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
		return Message{}, fmt.Errorf("transport: decode frame: %w", err)
	}
	if m.Type == 0 {
		return Message{}, errors.New("transport: frame missing message type")
	}
	return m, nil
}
