package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")

	sess, err := Start(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := 0.0
	buf := make([]float64, 1<<12)
	for i := range buf {
		buf[i] = float64(i)
		sink += buf[i]
	}
	_ = sink
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Stop(); err != nil { // idempotent
		t.Fatalf("second Stop: %v", err)
	}
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestEmptyPathsAreNoops(t *testing.T) {
	sess, err := Start("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	var nilSess *Session
	if err := nilSess.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartUnwritablePathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), "", ""); err == nil {
		t.Fatal("want error for unwritable cpu profile path")
	}
	// A failed trace start must unwind the already-running CPU profile so a
	// later Start succeeds.
	dir := t.TempDir()
	if _, err := Start(filepath.Join(dir, "cpu"), "", filepath.Join(dir, "no", "trace")); err == nil {
		t.Fatal("want error for unwritable trace path")
	}
	sess, err := Start(filepath.Join(dir, "cpu2"), "", "")
	if err != nil {
		t.Fatalf("cpu profiler leaked from failed Start: %v", err)
	}
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
}
