package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"edgecache/internal/transport"
)

// Spec formats the schedule as a -chaos spec string that ParseSpec parses
// back to the same schedule: seed and baseline link faults first, then one
// directive per event in Events order (a crash/restart pair formats as two
// directives, not crash=S@W+K — the parse is identical either way).
//
// The rendering is faithful for every schedule whose written event order
// satisfies the per-target discipline ParseSpec enforces — which includes
// everything ParseSpec or RandomSchedule produced. A programmatic schedule
// with per-target time-unordered events still formats, but the string will
// be rejected on re-parse with the same *SpecConflictError a hand-written
// equivalent would get. Event.Faults.Seed is not representable (the runner
// ignores it and derives per-link seeds from Schedule.Seed).
func (s Schedule) Spec() string {
	parts := []string{"seed=" + strconv.FormatInt(s.Seed, 10)}
	parts = append(parts, faultPairs(s.Links)...)
	for _, ev := range s.Events {
		parts = append(parts, eventSpec(ev))
	}
	return strings.Join(parts, ",")
}

// eventSpec renders one event as its spec directive.
func eventSpec(ev Event) string {
	trigger := formatTrigger(ev.Sweep, ev.Phase)
	switch ev.Op {
	case OpCrash:
		return fmt.Sprintf("crash=%d@%s", ev.SBS, trigger)
	case OpRestart:
		return fmt.Sprintf("restart=%d@%s", ev.SBS, trigger)
	case OpPartition:
		if ev.Phases > 0 {
			return fmt.Sprintf("partition=%d@%s+%d", ev.SBS, trigger, ev.Phases)
		}
		return fmt.Sprintf("partition=%d@%s", ev.SBS, trigger)
	case OpHeal:
		return fmt.Sprintf("heal=%d@%s", ev.SBS, trigger)
	case OpLinkFaults:
		target := strconv.Itoa(ev.SBS)
		if ev.SBS == -1 {
			target = "*"
		}
		pairs := faultPairs(ev.Faults)
		if len(pairs) == 0 {
			return fmt.Sprintf("linkfault=%s@%s", target, trigger)
		}
		return fmt.Sprintf("linkfault=%s@%s:%s", target, trigger, strings.Join(pairs, ";"))
	case OpBSCrash:
		return "bscrash=" + trigger
	case OpBSRestart:
		return "bsrestart=" + trigger
	default:
		return fmt.Sprintf("unknown-op-%d=%d@%s", int(ev.Op), ev.SBS, trigger)
	}
}

// formatTrigger renders a protocol point: "W" or phase-granular "W.P".
func formatTrigger(sweep, phase int) string {
	if phase == 0 {
		return strconv.Itoa(sweep)
	}
	return fmt.Sprintf("%d.%d", sweep, phase)
}

// faultPairs renders a fault configuration's non-zero fields as key/value
// tokens; the zero configuration renders as nothing (clean links).
func faultPairs(fc transport.FaultConfig) []string {
	var out []string
	if fc.DropProb != 0 {
		out = append(out, "drop="+formatProb(fc.DropProb))
	}
	if fc.DupProb != 0 {
		out = append(out, "dup="+formatProb(fc.DupProb))
	}
	if fc.ReorderProb != 0 {
		out = append(out, "reorder="+formatProb(fc.ReorderProb))
	}
	if fc.MaxDelay != 0 {
		out = append(out, "delay="+fc.MaxDelay.String())
	}
	return out
}

// formatProb renders a probability with the shortest representation that
// ParseFloat round-trips to the identical bits.
func formatProb(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

// Spec formats the process schedule as a -proc-chaos spec string that
// ParseProcSpec parses back to the same schedule, one directive per event
// in Events order. Like Schedule.Spec, the string only re-parses when the
// event order satisfies ParseProcSpec's per-target discipline (always true
// for parsed or RandomProcSchedule-generated schedules).
func (s ProcSchedule) Spec() string {
	parts := make([]string, 0, len(s.Events))
	for _, ev := range s.Events {
		parts = append(parts, procEventSpec(ev))
	}
	return strings.Join(parts, ",")
}

// procEventSpec renders one process event as its spec directive.
func procEventSpec(ev ProcEvent) string {
	target := ev.Cell
	if ev.SBS >= 0 {
		target = fmt.Sprintf("%s.%d", ev.Cell, ev.SBS)
	}
	switch ev.Op {
	case ProcKill:
		return fmt.Sprintf("kill=%s@%d", target, ev.Sweep)
	case ProcStop:
		return fmt.Sprintf("stop=%s@%d+%s", target, ev.Sweep, ev.Delay)
	case ProcSpawnDelay:
		return fmt.Sprintf("spawndelay=%s@%s", target, ev.Delay)
	default:
		return fmt.Sprintf("unknown-procop-%d=%s@%d", int(ev.Op), target, ev.Sweep)
	}
}
