// Package core implements the paper's two contributions: the distributed
// Gauss-Seidel algorithm (Algorithm 1, "DUA" — Distributed Updating
// Algorithm) that jointly optimizes caching and routing, and the LPPM
// privacy mechanism layered on the routing uploads.
//
// The package is organized bottom-up:
//
//   - subproblem.go solves the per-SBS problem P_n (eq. 10-14) by
//     Lagrangian dual decomposition: the coupling y ≤ x is relaxed with
//     multipliers μ (eq. 15-17); the caching sub-problem (eq. 18) is solved
//     by an integral greedy (Theorem 1), the routing sub-problem (eq. 20)
//     by a fractional knapsack, and μ follows the projected sub-gradient
//     update (eq. 21-23). A primal-recovery pass turns the dual iterates
//     into a feasible, high-quality (x_n, y_n) pair.
//   - coordinator.go runs Algorithm 1's synchronized sweep over SBSs,
//     optionally applying LPPM to every routing upload.
//   - exact.go provides an exhaustive P_n solver for small instances,
//     used by tests to certify the dual method's solution quality.
package core

import (
	"fmt"
	"math"
	"sort"

	"edgecache/internal/model"
)

// SubproblemConfig tunes the dual-decomposition solver for P_n.
type SubproblemConfig struct {
	// DualIters is K, the number of sub-gradient iterations.
	DualIters int
	// Alpha is the step-size decay in η(k) = 1/(1 + α·k) (eq. 22).
	Alpha float64
	// StepScale multiplies η(k). The paper leaves the absolute step scale
	// implicit; the multipliers μ live on the scale of d̂·λ, so the scale
	// is calibrated per-SBS from the instance when left at 0 (auto).
	StepScale float64
	// MaxCandidates bounds the distinct cache vectors retained for primal
	// recovery. 0 means the default (8).
	MaxCandidates int
}

// DefaultSubproblemConfig returns the configuration used by the experiment
// harness.
func DefaultSubproblemConfig() SubproblemConfig {
	return SubproblemConfig{DualIters: 60, Alpha: 0.2}
}

func (c SubproblemConfig) withDefaults() SubproblemConfig {
	if c.DualIters <= 0 {
		c.DualIters = 60
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.2
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	return c
}

// Subproblem solves P_n for one SBS. It precomputes the SBS's item list
// (linked (u,f) pairs with positive demand) once and can then be solved
// repeatedly against different aggregate routings y_{-n}, which is exactly
// the access pattern of the Gauss-Seidel sweep.
type Subproblem struct {
	inst *model.Instance
	n    int
	cfg  SubproblemConfig
	// items enumerates the SBS's servable (u,f) pairs.
	items []item
	// stepScale is the resolved sub-gradient step scale.
	stepScale float64
}

// item is one servable (u,f) pair from SBS n's perspective.
type item struct {
	u, f   int
	lambda float64
	// gain is (d̂_u − d_nu)·λ_uf: the cost saved by fully serving the pair
	// at the edge instead of the backhaul. The paper assumes d̂ ≫ d, so
	// gains are typically positive.
	gain float64
	// density is gain per unit of bandwidth, (d̂_u − d_nu).
	density float64
}

// NewSubproblem builds the solver for SBS n.
func NewSubproblem(inst *model.Instance, n int, cfg SubproblemConfig) (*Subproblem, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if n < 0 || n >= inst.N {
		return nil, fmt.Errorf("core: SBS index %d outside [0,%d)", n, inst.N)
	}
	cfg = cfg.withDefaults()
	s := &Subproblem{inst: inst, n: n, cfg: cfg}
	var maxDensity float64
	for u := 0; u < inst.U; u++ {
		if !inst.Links[n][u] {
			continue
		}
		density := inst.BSCost[u] - inst.EdgeCost[n][u]
		if density > maxDensity {
			maxDensity = density
		}
		for f := 0; f < inst.F; f++ {
			lambda := inst.Demand[u][f]
			if lambda <= 0 {
				continue
			}
			s.items = append(s.items, item{
				u: u, f: f, lambda: lambda,
				gain:    density * lambda,
				density: density,
			})
		}
	}
	s.stepScale = cfg.StepScale
	if s.stepScale <= 0 {
		// μ must climb to the scale of the routing coefficients
		// ((d̂−d)·λ ≈ density·λ) within a handful of iterations; scale the
		// step by the largest per-unit density so convergence speed is
		// instance-independent.
		s.stepScale = maxDensity
		if s.stepScale <= 0 {
			s.stepScale = 1
		}
	}
	return s, nil
}

// Result is the outcome of one P_n solve.
type Result struct {
	// Cache is x_n (length F) and Routing y_n (U×F).
	Cache   []bool
	Routing [][]float64
	// Gain is the serving-cost reduction Σ (d̂−d)·λ·y achieved versus
	// routing nothing; the coordinator uses it for reporting only.
	Gain float64
	// DualIters is the number of sub-gradient iterations executed.
	DualIters int
}

// Solve computes SBS n's best response to the aggregate routing yMinus
// (U×F, the portion of each demand already served by the other SBSs). The
// returned policy satisfies the cache capacity, bandwidth, box and
// no-overserve constraints, and routing only touches cached contents.
func (s *Subproblem) Solve(yMinus [][]float64) (*Result, error) {
	if len(yMinus) != s.inst.U {
		return nil, fmt.Errorf("core: yMinus has %d rows, want U=%d", len(yMinus), s.inst.U)
	}
	for u, row := range yMinus {
		if len(row) != s.inst.F {
			return nil, fmt.Errorf("core: yMinus[%d] has %d entries, want F=%d", u, len(row), s.inst.F)
		}
	}

	// Residual capacity per item: y_nuf ≤ clamp(1 − y_{-n,uf}, 0, 1),
	// which enforces the coupling constraint (4) inside the block update.
	caps := make([]float64, len(s.items))
	for i, it := range s.items {
		caps[i] = clamp01(1 - yMinus[it.u][it.f])
	}

	// Dual loop (eq. 21-23).
	mu := make([]float64, len(s.items)) // μ_uf ≥ 0, one per servable pair
	y := make([]float64, len(s.items))
	scoreBuf := make([]float64, s.inst.F)
	candidates := newCandidateSet(s.cfg.MaxCandidates)
	iters := 0
	for k := 0; k < s.cfg.DualIters; k++ {
		iters++
		// Caching sub-problem (eq. 18): maximize Σ_f x_f·Σ_u μ_uf under
		// Σ x_f ≤ C_n — integral greedy over per-content scores.
		for f := range scoreBuf {
			scoreBuf[f] = 0
		}
		for i, it := range s.items {
			scoreBuf[it.f] += mu[i]
		}
		x := s.cachingStep(scoreBuf)
		candidates.add(x)

		// Routing sub-problem (eq. 20): fractional knapsack with
		// coefficients w = (d−d̂)·λ + μ over the bandwidth budget.
		s.routingStep(y, mu, caps)

		// Projected sub-gradient update μ ← [μ + η·(y − x)]⁺ (eq. 21-23).
		eta := s.stepScale / (1 + s.cfg.Alpha*float64(k))
		done := true
		for i, it := range s.items {
			g := y[i]
			if x[it.f] {
				g -= 1
			}
			if g > 1e-9 {
				done = false
			}
			mu[i] = math.Max(0, mu[i]+eta*g)
		}
		if done && k >= 1 {
			// The relaxed constraint y ≤ x holds, so the current primal
			// pair is feasible; further dual iterations cannot improve it.
			break
		}
	}

	// Primal recovery: for every distinct cache vector seen, compute the
	// exact optimal routing given that cache and keep the best.
	best := s.recoverPrimal(candidates, caps)
	best.DualIters = iters
	return best, nil
}

// cachingStep solves eq. 18: pick the C_n contents with the largest
// positive multiplier mass. Ties at zero are left uncached (they earn
// nothing in the dual); primal recovery fills free capacity greedily.
func (s *Subproblem) cachingStep(score []float64) []bool {
	capN := s.inst.CacheCap[s.n]
	x := make([]bool, s.inst.F)
	if capN == 0 {
		return x
	}
	idx := make([]int, 0, len(score))
	for f, sc := range score {
		if sc > 0 {
			idx = append(idx, f)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if score[idx[a]] != score[idx[b]] {
			return score[idx[a]] > score[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if len(idx) > capN {
		idx = idx[:capN]
	}
	for _, f := range idx {
		x[f] = true
	}
	return x
}

// routingStep solves eq. 20 in place: minimize Σ (w_i)·y_i with
// w_i = −gain_i + μ_i, subject to Σ λ_i·y_i ≤ B_n and 0 ≤ y_i ≤ caps_i.
// Only negative-coefficient items are worth serving; the optimal solution
// of this LP fills them in increasing w/λ order (fractional knapsack).
func (s *Subproblem) routingStep(y, mu, caps []float64) {
	order := make([]int, 0, len(s.items))
	for i := range s.items {
		y[i] = 0
		if -s.items[i].gain+mu[i] < 0 && caps[i] > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		ra := (-s.items[ia].gain + mu[ia]) / s.items[ia].lambda
		rb := (-s.items[ib].gain + mu[ib]) / s.items[ib].lambda
		if ra != rb {
			return ra < rb
		}
		return ia < ib
	})
	budget := s.inst.Bandwidth[s.n]
	for _, i := range order {
		if budget <= 0 {
			break
		}
		it := s.items[i]
		amount := math.Min(caps[i], budget/it.lambda)
		y[i] = amount
		budget -= amount * it.lambda
	}
}

// RoutingGivenCache computes the exact optimal routing for a fixed cache
// vector x: a fractional knapsack over the cached, linked pairs with
// per-item capacity caps. It returns the flat item routing and the total
// gain. This is both the primal-recovery engine and, composed with a cache
// search, an independent P_n solver.
func (s *Subproblem) RoutingGivenCache(x []bool, caps []float64) ([]float64, float64) {
	y := make([]float64, len(s.items))
	order := make([]int, 0, len(s.items))
	for i, it := range s.items {
		if x[it.f] && caps[i] > 0 && it.gain > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if s.items[ia].density != s.items[ib].density {
			return s.items[ia].density > s.items[ib].density
		}
		return ia < ib
	})
	budget := s.inst.Bandwidth[s.n]
	var gain float64
	for _, i := range order {
		if budget <= 1e-12 {
			break
		}
		it := s.items[i]
		amount := math.Min(caps[i], budget/it.lambda)
		y[i] = amount
		budget -= amount * it.lambda
		gain += amount * it.gain
	}
	return y, gain
}

// BestRoutingForCache computes the optimal routing block (U×F) for a fixed
// cache vector against the aggregate routing of the other SBSs. Baselines
// use it to route on externally chosen caches (e.g. LRFU's) with exactly
// the same knapsack the distributed algorithm uses, so cost comparisons
// isolate the caching decision.
func (s *Subproblem) BestRoutingForCache(x []bool, yMinus [][]float64) ([][]float64, error) {
	if len(x) != s.inst.F {
		return nil, fmt.Errorf("core: cache vector has %d entries, want F=%d", len(x), s.inst.F)
	}
	if len(yMinus) != s.inst.U {
		return nil, fmt.Errorf("core: yMinus has %d rows, want U=%d", len(yMinus), s.inst.U)
	}
	caps := make([]float64, len(s.items))
	for i, it := range s.items {
		caps[i] = clamp01(1 - yMinus[it.u][it.f])
	}
	y, _ := s.RoutingGivenCache(x, caps)
	block := s.inst.NewZeroMatrix()
	for i, it := range s.items {
		block[it.u][it.f] = y[i]
	}
	return block, nil
}

// recoverPrimal evaluates every candidate cache vector (plus a greedy
// marginal-gain candidate) with exact routing and returns the best
// feasible pair as a Result in matrix form.
func (s *Subproblem) recoverPrimal(candidates *candidateSet, caps []float64) *Result {
	// The greedy candidate is evaluated unconditionally: it must not be
	// crowded out when the dual loop already produced MaxCandidates
	// distinct vectors.
	vectors := append([][]bool{s.greedyCache(caps)}, candidates.list...)

	var bestGain float64 = -1
	var bestX []bool
	var bestY []float64
	for _, x := range vectors {
		y, gain := s.RoutingGivenCache(x, caps)
		if gain > bestGain {
			bestGain, bestX, bestY = gain, x, y
		}
	}
	bestX, bestY, bestGain = s.localSearch(bestX, bestY, bestGain, caps)

	res := &Result{
		Cache:   bestX,
		Routing: s.inst.NewZeroMatrix(),
		Gain:    bestGain,
	}
	for i, it := range s.items {
		res.Routing[it.u][it.f] = bestY[i]
	}
	return res
}

// localSearch improves a cache vector by 1-swap exchanges (replace one
// cached content with one uncached content) until no swap improves the
// exact routing gain. The greedy candidate is near-optimal but not optimal
// (submodular greedy); swaps close the residual gap on the instances this
// repository targets.
func (s *Subproblem) localSearch(x []bool, y []float64, gain float64, caps []float64) ([]bool, []float64, float64) {
	if x == nil {
		return x, y, gain
	}
	const maxPasses = 4
	work := append([]bool(nil), x...)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for out := 0; out < s.inst.F; out++ {
			if !work[out] {
				continue
			}
			for in := 0; in < s.inst.F; in++ {
				if work[in] || in == out {
					continue
				}
				work[out], work[in] = false, true
				candY, candGain := s.RoutingGivenCache(work, caps)
				if candGain > gain+1e-9 {
					gain, y = candGain, candY
					x = append(x[:0], work...)
					improved = true
					break // 'out' is no longer cached; rescan
				}
				work[out], work[in] = true, false
			}
		}
		if !improved {
			break
		}
	}
	return x, y, gain
}

// greedyCache builds a cache vector by repeatedly adding the content with
// the largest marginal routing gain (a submodular-style greedy). It is the
// fallback candidate that keeps primal recovery strong when the dual
// multipliers have not yet separated the useful contents.
func (s *Subproblem) greedyCache(caps []float64) []bool {
	capN := s.inst.CacheCap[s.n]
	x := make([]bool, s.inst.F)
	if capN == 0 || len(s.items) == 0 {
		return x
	}
	_, baseGain := s.RoutingGivenCache(x, caps)
	for picked := 0; picked < capN; picked++ {
		bestF, bestGain := -1, baseGain
		for f := 0; f < s.inst.F; f++ {
			if x[f] {
				continue
			}
			x[f] = true
			_, gain := s.RoutingGivenCache(x, caps)
			x[f] = false
			if gain > bestGain+1e-12 {
				bestF, bestGain = f, gain
			}
		}
		if bestF == -1 {
			break // no content adds gain (bandwidth exhausted or no demand)
		}
		x[bestF] = true
		baseGain = bestGain
	}
	return x
}

// candidateSet deduplicates cache vectors up to a size cap.
type candidateSet struct {
	max  int
	seen map[string]bool
	list [][]bool
}

func newCandidateSet(max int) *candidateSet {
	return &candidateSet{max: max, seen: make(map[string]bool)}
}

func (c *candidateSet) add(x []bool) {
	if len(c.list) >= c.max {
		return
	}
	key := make([]byte, len(x))
	for i, v := range x {
		if v {
			key[i] = 1
		}
	}
	k := string(key)
	if c.seen[k] {
		return
	}
	c.seen[k] = true
	c.list = append(c.list, append([]bool(nil), x...))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
