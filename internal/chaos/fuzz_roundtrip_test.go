package chaos

import (
	"reflect"
	"testing"
)

// FuzzSpecRoundTrip pins the Spec() formatter to the parser: any spec
// string ParseSpec accepts must re-render to a string that parses back to
// the structurally identical schedule. This is the property soak repro
// files depend on — a minimized schedule is persisted as its spec string,
// so formatting must never lose or reorder information. The committed
// corpus under testdata/fuzz covers every directive, phase-granular
// triggers, all-links targets, and fault attribute lists.
func FuzzSpecRoundTrip(f *testing.F) {
	seeds := []string{
		"seed=7,drop=0.3,crash=1@2+3",
		"bscrash=2+1,drop=0.25,dup=0.1",
		"partition=0@1+2,delay=5ms,reorder=0.05",
		"crash=1@2,restart=1@4,crash=2@2,restart=2@3",
		"partition=0@1,heal=0@3",
		"linkfault=2@1:drop=0.2;delay=2ms,linkfault=2@3",
		"linkfault=*@2:dup=0.015",
		"crash=1@2.1,restart=1@3.0",
		"seed=-42,bscrash=1,bsrestart=2",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		orig, err := ParseSpec(spec)
		if err != nil {
			return // parser hardening is FuzzSpec's job
		}
		rendered := orig.Spec()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("Spec() of accepted schedule does not re-parse:\n  input:    %q\n  rendered: %q\n  error:    %v", spec, rendered, err)
		}
		if !reflect.DeepEqual(orig, again) {
			t.Fatalf("round trip changed the schedule:\n  input:    %q\n  rendered: %q\n  before:   %+v\n  after:    %+v", spec, rendered, orig, again)
		}
		// The rendering must also be a fixed point: formatting the
		// re-parsed schedule yields the same string.
		if second := again.Spec(); second != rendered {
			t.Fatalf("Spec() is not a fixed point: %q then %q", rendered, second)
		}
	})
}

// FuzzProcSpecRoundTrip is the same property for -proc-chaos specs and
// ProcSchedule.Spec().
func FuzzProcSpecRoundTrip(f *testing.F) {
	seeds := []string{
		"kill=cell-1@2",
		"stop=cell-0@1+100ms,kill=cell-0.2@3",
		"spawndelay=cell-0@50ms,kill=cell-0@2",
		"kill=cell-0@1,kill=cell-1@1,stop=cell-1.3@2+1.5ms",
		"spawndelay=cell-a.0@1h,stop=cell-a.0@9+250ms",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		orig, err := ParseProcSpec(spec)
		if err != nil {
			return
		}
		rendered := orig.Spec()
		again, err := ParseProcSpec(rendered)
		if err != nil {
			t.Fatalf("Spec() of accepted proc schedule does not re-parse:\n  input:    %q\n  rendered: %q\n  error:    %v", spec, rendered, err)
		}
		if !reflect.DeepEqual(orig, again) {
			t.Fatalf("round trip changed the proc schedule:\n  input:    %q\n  rendered: %q\n  before:   %+v\n  after:    %+v", spec, rendered, orig, again)
		}
		if second := again.Spec(); second != rendered {
			t.Fatalf("ProcSchedule.Spec() is not a fixed point: %q then %q", rendered, second)
		}
	})
}
