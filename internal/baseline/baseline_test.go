package baseline

import (
	"math"
	"math/rand"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/model"
)

func randomInstance(rng *rand.Rand, n, u, f int) *model.Instance {
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1 + rng.Float64()*3
		}
		inst.CacheCap[i] = 1 + rng.Intn(f/2+1)
		inst.Bandwidth[i] = 5 + rng.Float64()*40
	}
	return inst
}

func requireFeasible(t *testing.T, inst *model.Instance, sol *model.Solution) {
	t.Helper()
	if vs := model.CheckFeasibility(inst, sol.Caching, sol.Routing); len(vs) != 0 {
		t.Fatalf("infeasible solution:\n%s", model.FormatViolations(vs))
	}
}

func TestPlanLRFUFeasibleAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := randomInstance(rng, 3, 6, 8)
	cfg := LRFUConfig{Seed: 7}
	a, err := PlanLRFU(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireFeasible(t, inst, a.Snapshot)
	b, err := PlanLRFU(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OnlineCost.Total != b.OnlineCost.Total {
		t.Errorf("same seed gave costs %v and %v", a.OnlineCost.Total, b.OnlineCost.Total)
	}
	// LRFU actually caches something on a dense instance.
	total := 0
	for n := 0; n < inst.N; n++ {
		total += a.Snapshot.Caching.Count(n)
	}
	if total == 0 {
		t.Error("LRFU cached nothing")
	}
	if a.HitRate < 0 || a.HitRate > 1 {
		t.Errorf("hit rate = %v", a.HitRate)
	}
	// The online cost can never beat serving everything at the edge for
	// free, nor exceed the all-backhaul ceiling.
	if a.OnlineCost.Total > inst.MaxCost()+1e-6 {
		t.Errorf("online cost %v exceeds MaxCost %v", a.OnlineCost.Total, inst.MaxCost())
	}
	if a.OnlineCost.Total < 0 {
		t.Errorf("negative online cost %v", a.OnlineCost.Total)
	}
}

func TestPlanLRFUZeroDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := randomInstance(rng, 2, 3, 4)
	for u := range inst.Demand {
		for f := range inst.Demand[u] {
			inst.Demand[u][f] = 0
		}
	}
	res, err := PlanLRFU(inst, LRFUConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineCost.Total != 0 {
		t.Errorf("zero-demand online cost = %v, want 0", res.OnlineCost.Total)
	}
}

func TestPlanLRFUValidation(t *testing.T) {
	inst := &model.Instance{N: 0}
	if _, err := PlanLRFU(inst, LRFUConfig{}); err == nil {
		t.Error("invalid instance: want error")
	}
}

func TestPlanLRFUCapsStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := randomInstance(rng, 2, 4, 5)
	// Inflate demand: the planner must scale it down rather than expand
	// millions of requests.
	for u := range inst.Demand {
		for f := range inst.Demand[u] {
			inst.Demand[u][f] *= 1e5
		}
	}
	res, err := PlanLRFU(inst, LRFUConfig{MaxRequests: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireFeasible(t, inst, res.Snapshot)
	if res.OnlineCost.Total <= 0 {
		t.Errorf("online cost = %v, want positive", res.OnlineCost.Total)
	}
}

func TestGreedyRoutingRespectsCoupling(t *testing.T) {
	// Two SBSs both fully able to serve one MU's one content: the second
	// must only take the residual.
	inst := &model.Instance{
		N: 2, U: 1, F: 1,
		Demand:    [][]float64{{10}},
		Links:     [][]bool{{true}, {true}},
		CacheCap:  []int{1, 1},
		Bandwidth: []float64{6, 100},
		EdgeCost:  [][]float64{{1}, {1}},
		BSCost:    []float64{100},
	}
	caching := model.NewCachingPolicy(inst)
	caching.Set(0, 0, true)
	caching.Set(1, 0, true)
	routing, err := GreedyRouting(inst, caching)
	if err != nil {
		t.Fatal(err)
	}
	// SBS0 limited to 6/10 by bandwidth, SBS1 takes the remaining 0.4.
	if math.Abs(routing.At(0, 0, 0)-0.6) > 1e-9 {
		t.Errorf("SBS0 share = %v, want 0.6", routing.At(0, 0, 0))
	}
	if math.Abs(routing.At(1, 0, 0)-0.4) > 1e-9 {
		t.Errorf("SBS1 share = %v, want 0.4", routing.At(1, 0, 0))
	}
}

func TestTopPopular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(rng, 3, 5, 6)
	sol, err := TopPopular(inst)
	if err != nil {
		t.Fatal(err)
	}
	requireFeasible(t, inst, sol)
	for n := 0; n < inst.N; n++ {
		if got := sol.Caching.Count(n); got != min(inst.CacheCap[n], inst.F) {
			t.Errorf("SBS %d caches %d, want %d", n, got, min(inst.CacheCap[n], inst.F))
		}
	}
	if _, err := TopPopular(&model.Instance{N: 0}); err == nil {
		t.Error("invalid instance: want error")
	}
}

func TestNoCache(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := randomInstance(rng, 2, 4, 5)
	sol, err := NoCache(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost.Total-inst.MaxCost()) > 1e-9 {
		t.Errorf("NoCache cost = %v, want MaxCost %v", sol.Cost.Total, inst.MaxCost())
	}
	if _, err := NoCache(&model.Instance{N: 0}); err == nil {
		t.Error("invalid instance: want error")
	}
}

func TestCentralizedMILPSmall(t *testing.T) {
	// Hand-checkable instance: one SBS, two MUs, two contents, cache 1.
	inst := &model.Instance{
		N: 1, U: 2, F: 2,
		Demand:    [][]float64{{10, 0}, {0, 2}},
		Links:     [][]bool{{true, true}},
		CacheCap:  []int{1},
		Bandwidth: []float64{100},
		EdgeCost:  [][]float64{{1, 1}},
		BSCost:    []float64{100, 100},
	}
	sol, err := CentralizedMILP(inst, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireFeasible(t, inst, sol)
	// Cache content 0 (demand 10 ≫ 2): cost = 10·1 + 2·100 = 210.
	if !sol.Caching.Get(0, 0) || sol.Caching.Get(0, 1) {
		t.Errorf("cache = %v, want content 0 only", sol.Caching.RowBools(0))
	}
	if math.Abs(sol.Cost.Total-210) > 1e-6 {
		t.Errorf("cost = %v, want 210", sol.Cost.Total)
	}
}

func TestCentralizedMILPRefusesLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, 3, 4, 20) // 60 binaries > default 36
	if _, err := CentralizedMILP(inst, MILPOptions{}); err == nil {
		t.Error("large instance: want error")
	}
}

// TestDistributedNeverBeatsMILP is the soundness direction of the
// Theorem 2 check: the distributed cost can never fall below the exact
// optimum (that would mean an infeasible policy or a broken oracle). The
// magnitude of the gap on coupled instances is an empirical question — the
// paper's Theorem 2 assumes a Cartesian-product feasible set, which the
// no-overserve constraint (4) violates — and is measured by experiment E7
// (BenchmarkOptimalityGap) rather than asserted here; a generous guard
// catches regressions.
func TestDistributedNeverBeatsMILP(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	worst := 1.0
	for trial := 0; trial < 12; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(2), 3+rng.Intn(3), 3+rng.Intn(3))
		opt, err := CentralizedMILP(inst, MILPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		coord, err := core.NewCoordinator(inst, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Solution.Cost.Total < opt.Cost.Total-1e-6 {
			t.Fatalf("trial %d: distributed cost %v below MILP optimum %v — MILP or feasibility bug",
				trial, res.Solution.Cost.Total, opt.Cost.Total)
		}
		ratio := res.Solution.Cost.Total / opt.Cost.Total
		if ratio > worst {
			worst = ratio
		}
		if ratio > 1.35 {
			t.Errorf("trial %d: distributed cost %v is %.2f%% above optimum %v — far beyond the documented stall range",
				trial, res.Solution.Cost.Total, (ratio-1)*100, opt.Cost.Total)
		}
	}
	t.Logf("worst distributed/optimal cost ratio: %v", worst)
}

// TestDistributedExactWhenDecoupled: with a single SBS (or disjoint link
// sets) constraint (4) never couples blocks, the feasible set is a product,
// and Theorem 2's argument is valid — the distributed algorithm must match
// the MILP optimum exactly.
func TestDistributedExactWhenDecoupled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		var inst *model.Instance
		if trial%2 == 0 {
			inst = randomInstance(rng, 1, 3+rng.Intn(3), 4+rng.Intn(3))
		} else {
			// Two SBSs with disjoint MU groups.
			inst = randomInstance(rng, 2, 6, 4)
			for u := 0; u < inst.U; u++ {
				inst.Links[0][u] = u < 3 && inst.Links[0][u]
				inst.Links[1][u] = u >= 3 && inst.Links[1][u]
			}
		}
		opt, err := CentralizedMILP(inst, MILPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		coord, err := core.NewCoordinator(inst, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		gap := (res.Solution.Cost.Total - opt.Cost.Total) / opt.Cost.Total
		if gap > 1e-4 || gap < -1e-9 {
			t.Errorf("trial %d: decoupled instance gap %.4f%%, want 0", trial, gap*100)
		}
	}
}

// TestBaselineOrdering checks the qualitative ordering the paper reports:
// optimum ≤ DUA ≤ LRFU on instances where caching decisions matter.
func TestBaselineOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var duaTotal, lrfuTotal float64
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(rng, 3, 6, 8)
		coord, err := core.NewCoordinator(inst, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		lrfu, err := PlanLRFU(inst, LRFUConfig{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		duaTotal += res.Solution.Cost.Total
		lrfuTotal += lrfu.OnlineCost.Total
	}
	if duaTotal > lrfuTotal {
		t.Errorf("DUA aggregate cost %v exceeds LRFU %v — optimization adds no value?", duaTotal, lrfuTotal)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
