package cache

import "edgecache/internal/trace"

// ReplayStats summarizes one trace replay.
type ReplayStats struct {
	Requests int
	Hits     int
}

// HitRate returns Hits/Requests, or 0 for an empty replay.
func (s ReplayStats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// MissRatioCurve replays the same stream against one policy family at a
// range of capacities and returns the miss ratio per capacity — the
// classic working-set analysis used to size caches. For stack algorithms
// (LRU) the curve is non-increasing; FIFO-style policies can exhibit
// Bélády's anomaly, which the tests demonstrate rather than forbid.
func MissRatioCurve(policy string, lambda float64, capacities []int, stream []trace.Request) ([]float64, error) {
	out := make([]float64, len(capacities))
	for i, capacity := range capacities {
		p, err := NewByName(policy, capacity, lambda)
		if err != nil {
			return nil, err
		}
		stats := Replay(p, stream)
		out[i] = 1 - stats.HitRate()
	}
	return out, nil
}

// Replay feeds a time-ordered request stream through a policy and returns
// hit statistics. LRFU policies receive the stream's real timestamps
// (AccessAt); other policies use their logical clocks.
func Replay(p Policy, stream []trace.Request) ReplayStats {
	var stats ReplayStats
	lrfu, hasTime := p.(*LRFU)
	for _, req := range stream {
		var hit bool
		if hasTime {
			hit = lrfu.AccessAt(req.Content, req.Time)
		} else {
			hit = p.Access(req.Content)
		}
		stats.Requests++
		if hit {
			stats.Hits++
		}
	}
	return stats
}
