package model

import (
	"fmt"
	"sort"
	"strings"
)

// InstanceSummary is a human-oriented digest of an instance, used by the
// CLI tools to sanity-check a scenario before a run.
type InstanceSummary struct {
	SBSs, Groups, Contents int
	Links                  int
	// CoveredGroups counts MU groups with at least one SBS link;
	// MeanDegree is the average number of links per covered group.
	CoveredGroups int
	MeanDegree    float64
	// TotalDemand and ReachableDemand are the aggregate request rates (all
	// and edge-servable); TopContentShare is the demand fraction of the
	// most popular content.
	TotalDemand, ReachableDemand float64
	TopContentShare              float64
	// TotalCacheSlots and TotalBandwidth sum the SBS resources;
	// BandwidthDemandRatio is TotalBandwidth / TotalDemand (∞-safe: 0 when
	// demand is 0).
	TotalCacheSlots      int
	TotalBandwidth       float64
	BandwidthDemandRatio float64
	// MaxCost is the all-backhaul ceiling W.
	MaxCost float64
}

// Summarize computes the digest.
func (in *Instance) Summarize() InstanceSummary {
	s := InstanceSummary{
		SBSs:            in.N,
		Groups:          in.U,
		Contents:        in.F,
		Links:           in.LinkCount(),
		TotalDemand:     in.TotalDemand(),
		ReachableDemand: in.ReachableDemand(),
		MaxCost:         in.MaxCost(),
	}
	degreeSum := 0
	for u := 0; u < in.U; u++ {
		degree := 0
		for n := 0; n < in.N; n++ {
			if in.Links[n][u] {
				degree++
			}
		}
		if degree > 0 {
			s.CoveredGroups++
			degreeSum += degree
		}
	}
	if s.CoveredGroups > 0 {
		s.MeanDegree = float64(degreeSum) / float64(s.CoveredGroups)
	}
	var topDemand float64
	for f := 0; f < in.F; f++ {
		var d float64
		for u := 0; u < in.U; u++ {
			d += in.Demand[u][f]
		}
		if d > topDemand {
			topDemand = d
		}
	}
	if s.TotalDemand > 0 {
		s.TopContentShare = topDemand / s.TotalDemand
	}
	for n := 0; n < in.N; n++ {
		s.TotalCacheSlots += in.CacheCap[n]
		s.TotalBandwidth += in.Bandwidth[n]
	}
	if s.TotalDemand > 0 {
		s.BandwidthDemandRatio = s.TotalBandwidth / s.TotalDemand
	}
	return s
}

// String renders the summary as a short multi-line report.
func (s InstanceSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d SBSs × %d MU groups × %d contents, %d links (%d/%d groups covered, mean degree %.2f)\n",
		s.SBSs, s.Groups, s.Contents, s.Links, s.CoveredGroups, s.Groups, s.MeanDegree)
	fmt.Fprintf(&b, "demand %.1f units (%.1f reachable, top content %.1f%%)\n",
		s.TotalDemand, s.ReachableDemand, 100*s.TopContentShare)
	fmt.Fprintf(&b, "resources: %d cache slots, %.0f bandwidth (%.2fx demand); backhaul ceiling %.0f",
		s.TotalCacheSlots, s.TotalBandwidth, s.BandwidthDemandRatio, s.MaxCost)
	return b.String()
}

// DegreeHistogram returns, for each possible degree 0..N, how many MU
// groups have exactly that many SBS links. Useful when analyzing Fig. 5's
// link sweeps.
func (in *Instance) DegreeHistogram() []int {
	hist := make([]int, in.N+1)
	for u := 0; u < in.U; u++ {
		degree := 0
		for n := 0; n < in.N; n++ {
			if in.Links[n][u] {
				degree++
			}
		}
		hist[degree]++
	}
	return hist
}

// PopularityRanking returns content indices sorted by total demand,
// most-demanded first (ties by lower index).
func (in *Instance) PopularityRanking() []int {
	pop := make([]float64, in.F)
	for u := 0; u < in.U; u++ {
		for f := 0; f < in.F; f++ {
			pop[f] += in.Demand[u][f]
		}
	}
	idx := make([]int, in.F)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pop[idx[a]] > pop[idx[b]] })
	return idx
}
